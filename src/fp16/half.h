#pragma once
/**
 * @file
 * IEEE 754 binary16 ("half") floating-point library.
 *
 * The paper extended GPGPU-Sim with 16-bit floating point via a
 * header-only half library (Rau [45]); we implement the equivalent
 * from scratch.  Storage is the 16-bit IEEE pattern
 * (1 sign, 5 exponent, 10 mantissa bits); arithmetic promotes to
 * float and rounds back with round-to-nearest-even, matching the
 * behaviour of hardware FP16 multiply feeding an FP32 accumulator.
 */

#include <cstdint>
#include <limits>

namespace tcsim {

/** IEEE 754 binary16 value type. */
class half
{
  public:
    /** Zero-initialized (+0.0). */
    constexpr half() = default;

    /** Convert from float with round-to-nearest-even. */
    explicit half(float f) : bits_(float_to_bits(f)) {}

    /** Construct from a raw 16-bit IEEE pattern. */
    static constexpr half from_bits(uint16_t bits)
    {
        half h;
        h.bits_ = bits;
        return h;
    }

    /** Raw IEEE bit pattern. */
    constexpr uint16_t bits() const { return bits_; }

    /** Widen to float (exact: every binary16 value is a binary32 value). */
    float to_float() const { return bits_to_float(bits_); }
    explicit operator float() const { return to_float(); }

    bool is_nan() const
    {
        return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
    }
    bool is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }
    bool is_zero() const { return (bits_ & 0x7fffu) == 0; }
    bool signbit() const { return (bits_ & 0x8000u) != 0; }
    /** True for nonzero values with a zero exponent field. */
    bool is_subnormal() const
    {
        return (bits_ & 0x7c00u) == 0 && (bits_ & 0x03ffu) != 0;
    }

    half operator-() const { return from_bits(bits_ ^ 0x8000u); }

    /** Round-to-nearest-even float -> binary16 conversion. */
    static uint16_t float_to_bits(float f);
    /** Exact binary16 -> float conversion. */
    static float bits_to_float(uint16_t bits);

  private:
    uint16_t bits_ = 0;
};

// Arithmetic promotes to float and rounds the result back to half,
// the standard software-emulation semantics for binary16.
inline half operator+(half a, half b) { return half(a.to_float() + b.to_float()); }
inline half operator-(half a, half b) { return half(a.to_float() - b.to_float()); }
inline half operator*(half a, half b) { return half(a.to_float() * b.to_float()); }
inline half operator/(half a, half b) { return half(a.to_float() / b.to_float()); }

inline half& operator+=(half& a, half b) { a = a + b; return a; }
inline half& operator-=(half& a, half b) { a = a - b; return a; }
inline half& operator*=(half& a, half b) { a = a * b; return a; }
inline half& operator/=(half& a, half b) { a = a / b; return a; }

// IEEE comparison semantics (NaN compares unordered) via float.
inline bool operator==(half a, half b) { return a.to_float() == b.to_float(); }
inline bool operator!=(half a, half b) { return a.to_float() != b.to_float(); }
inline bool operator<(half a, half b) { return a.to_float() < b.to_float(); }
inline bool operator<=(half a, half b) { return a.to_float() <= b.to_float(); }
inline bool operator>(half a, half b) { return a.to_float() > b.to_float(); }
inline bool operator>=(half a, half b) { return a.to_float() >= b.to_float(); }

namespace fp16_literals {
/** 1.5_h style literal for tests and examples. */
inline half operator""_h(long double v) { return half(static_cast<float>(v)); }
inline half operator""_h(unsigned long long v)
{
    return half(static_cast<float>(v));
}
}  // namespace fp16_literals

}  // namespace tcsim

namespace std {

/** numeric_limits specialization for tcsim::half. */
template <>
class numeric_limits<tcsim::half>
{
  public:
    static constexpr bool is_specialized = true;
    static constexpr bool is_signed = true;
    static constexpr bool is_integer = false;
    static constexpr bool is_exact = false;
    static constexpr bool has_infinity = true;
    static constexpr bool has_quiet_NaN = true;
    static constexpr int digits = 11;       // implicit bit + 10 mantissa
    static constexpr int max_exponent = 16;
    static constexpr int min_exponent = -13;

    static constexpr tcsim::half min()
    {
        return tcsim::half::from_bits(0x0400);  // 2^-14
    }
    static constexpr tcsim::half max()
    {
        return tcsim::half::from_bits(0x7bff);  // 65504
    }
    static constexpr tcsim::half lowest()
    {
        return tcsim::half::from_bits(0xfbff);  // -65504
    }
    static constexpr tcsim::half denorm_min()
    {
        return tcsim::half::from_bits(0x0001);  // 2^-24
    }
    static constexpr tcsim::half epsilon()
    {
        return tcsim::half::from_bits(0x1400);  // 2^-10
    }
    static constexpr tcsim::half infinity()
    {
        return tcsim::half::from_bits(0x7c00);
    }
    static constexpr tcsim::half quiet_NaN()
    {
        return tcsim::half::from_bits(0x7e00);
    }
};

}  // namespace std
