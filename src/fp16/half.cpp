#include "fp16/half.h"

#include <bit>
#include <cstring>

namespace tcsim {

uint16_t
half::float_to_bits(float f)
{
    uint32_t x = std::bit_cast<uint32_t>(f);
    uint32_t sign = (x >> 16) & 0x8000u;
    uint32_t abs = x & 0x7fffffffu;

    if (abs >= 0x7f800000u) {
        // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
        uint32_t mant = abs > 0x7f800000u ? 0x0200u | ((x >> 13) & 0x03ffu)
                                          : 0u;
        if (abs > 0x7f800000u && (mant & 0x03ffu) == 0)
            mant |= 1;  // ensure NaN payload nonzero
        return static_cast<uint16_t>(sign | 0x7c00u | (mant & 0x03ffu));
    }

    if (abs >= 0x477ff000u) {
        // Values >= 65520 round to infinity: 65520 is the halfway point
        // between max (65504, odd mantissa) and the next step up, so
        // ties-to-even already selects infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }

    // Exponent of float: abs >> 23; binary16 bias 15, binary32 bias 127.
    int32_t exp32 = static_cast<int32_t>(abs >> 23) - 127;
    int32_t exp16 = exp32 + 15;

    if (exp16 >= 0x1f) {
        // Overflow to infinity (handled above for the rounding edge,
        // kept for exponents beyond it).
        return static_cast<uint16_t>(sign | 0x7c00u);
    }

    uint32_t mant32 = abs & 0x007fffffu;

    if (exp16 <= 0) {
        // Subnormal or zero in binary16.
        if (exp16 < -10) {
            // Magnitude below 2^-25: rounds to (signed) zero. The
            // boundary cases at 2^-25 itself have exp16 == -10 and are
            // handled by the shift-and-round path below.
            return static_cast<uint16_t>(sign);
        }
        // Add the implicit leading 1 then shift right by (1 - exp16)+13
        // with round-to-nearest-even.
        uint32_t mant = mant32 | 0x00800000u;
        int shift = 14 - exp16;  // 13 (mantissa width delta) + (1 - exp16)
        uint32_t rounded = mant >> shift;
        uint32_t remainder = mant & ((1u << shift) - 1);
        uint32_t halfway = 1u << (shift - 1);
        if (remainder > halfway || (remainder == halfway && (rounded & 1)))
            ++rounded;
        return static_cast<uint16_t>(sign | rounded);
    }

    // Normal range: drop 13 mantissa bits with round-to-nearest-even.
    uint32_t rounded = mant32 >> 13;
    uint32_t remainder = mant32 & 0x1fffu;
    if (remainder > 0x1000u || (remainder == 0x1000u && (rounded & 1)))
        ++rounded;
    uint32_t result = (static_cast<uint32_t>(exp16) << 10) + rounded;
    // Mantissa carry-out increments the exponent naturally; it may
    // carry into infinity which is the correct rounding.
    return static_cast<uint16_t>(sign | result);
}

float
half::bits_to_float(uint16_t bits)
{
    uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
    uint32_t exp = (bits >> 10) & 0x1fu;
    uint32_t mant = bits & 0x03ffu;

    uint32_t out;
    if (exp == 0x1f) {
        // Inf / NaN
        out = sign | 0x7f800000u | (mant << 13);
    } else if (exp == 0) {
        if (mant == 0) {
            out = sign;  // signed zero
        } else {
            // Subnormal: normalize.
            int shift = 0;
            while ((mant & 0x0400u) == 0) {
                mant <<= 1;
                ++shift;
            }
            mant &= 0x03ffu;
            // Subnormal value = mant * 2^-24; after normalization the
            // implicit bit carries weight 2^(-14 - shift).
            uint32_t e32 = static_cast<uint32_t>(127 - 14 - shift);
            out = sign | (e32 << 23) | (mant << 13);
        }
    } else {
        uint32_t e32 = exp + (127 - 15);
        out = sign | (e32 << 23) | (mant << 13);
    }
    return std::bit_cast<float>(out);
}

}  // namespace tcsim
