/**
 * @file
 * Declarative model-layer graph IR and its lowering to kernel-registry
 * launches.
 *
 * A ModelGraph describes a DL inference model the way a framework
 * would — an ordered list of layers (linear / conv2d / attention /
 * elementwise) with shapes and precision — instead of a hand-written
 * kernel list.  lower_model() expands each layer into one or more
 * GEMM-shaped launches with named activation/weight tensors and
 * read/write sets; the result feeds directly into the task-graph
 * compiler (sim/graph/task_graph), so streams and events are always
 * derived from data hazards, never authored.
 *
 * The lowering is deliberately coarse: every layer becomes a dense
 * GEMM sized by the standard im2col/flattening identities, padded up
 * to the wmma_shared tile grid (m,n % 64, k % 16).  That is exactly
 * the granularity the underlying simulator models (the paper times
 * tensor-core GEMMs, not elementwise ALU work), and it keeps the
 * frontend free of per-kernel special cases:
 *
 *  - linear      -> one GEMM  [rows x in] * [in x out]
 *  - conv2d      -> one im2col GEMM  [batch*oh*ow x ic*kh*kw] * [.. x oc]
 *  - attention   -> four GEMMs (qkv projection, scores QK^T, context
 *                   S*V, output projection), scored across all heads
 *                   at once so flops match batch*heads*t^2*head_dim
 *  - elementwise -> one thin k=16 wmma_naive launch (bandwidth-bound
 *                   proxy: reads and rewrites the activation)
 *
 * `rows` is batch * tokens_per_request for sequence activations and
 * batch * 1 once an image has been flattened through a linear layer.
 * Activation tensors are auto-named ("<layer>.out") and chained
 * implicitly; the optional @p prefix namespaces a whole lowered
 * instance so the serving engine can keep many batches in flight on
 * one Gpu without tensor-name collisions.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "arch/gpu_config.h"

namespace tcsim::model {

/** Invalid graph (bad shapes, mismatched chaining, ...). */
class ModelError : public std::runtime_error
{
  public:
    explicit ModelError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

enum class LayerKind { kLinear, kConv2d, kAttention, kElementwise };

/** Scenario-facing name of a layer kind ("linear", ...). */
const char* layer_kind_name(LayerKind kind);

/** One layer.  Only the fields of the layer's kind are consulted. */
struct LayerSpec
{
    LayerKind kind = LayerKind::kLinear;
    /** Optional; defaults to "<kind><index>". */
    std::string name;

    // linear
    int in_features = 0;  ///< 0 = infer from the incoming activation.
    int out_features = 0;

    // conv2d
    int in_channels = 0;
    int out_channels = 0;
    int kernel = 3;
    int stride = 1;
    /** Input image dims; required on the first conv, inferred (and
     *  checked when nonzero) afterwards. */
    int height = 0;
    int width = 0;

    // attention
    int embed_dim = 0;  ///< 0 = infer from the incoming activation.
    int heads = 1;

    /** Per-layer precision override (graph precision when unset). */
    bool has_precision = false;
    TcMode precision = TcMode::kMixed;
};

/** A declarative model: ordered layers plus graph-wide attributes. */
struct ModelGraph
{
    std::string name = "model";
    /** Sequence length each request contributes to GEMM rows. */
    int tokens_per_request = 64;
    /** Width of the model input for sequence models; ignored (may be
     *  0) when the first layer is conv2d. */
    int input_features = 0;
    TcMode precision = TcMode::kMixed;
    std::vector<LayerSpec> layers;
};

/** A named tensor the lowered kernels read/write (hazard metadata). */
struct LoweredTensor
{
    std::string name;
    uint64_t bytes = 0;
};

/** One kernel-registry launch produced by lowering. */
struct LoweredKernel
{
    std::string name;
    std::string family;  ///< Kernel-registry name ("wmma_shared", ...).
    int m = 0, n = 0, k = 0;
    TcMode mode = TcMode::kMixed;
    int layer = 0;  ///< Index into ModelGraph::layers.
    double flops = 0;
    std::vector<std::string> reads;
    std::vector<std::string> writes;
};

/** The lowering result: tensors + launches in execution order. */
struct LoweredModel
{
    std::vector<LoweredTensor> tensors;
    std::vector<LoweredKernel> kernels;
    int num_layers = 0;
    /** kernels[] index of each layer's final launch (the layer
     *  boundary the serving engine hooks for continuous batching). */
    std::vector<int> last_kernel_of_layer;
    double total_flops = 0;
};

/**
 * Expand @p graph for a forward pass over @p batch_requests requests.
 * Every tensor and kernel name is prepended with @p prefix.  Throws
 * ModelError on invalid or inconsistently chained layers.
 */
LoweredModel lower_model(const ModelGraph& graph, int batch_requests,
                         const std::string& prefix = {});

}  // namespace tcsim::model
