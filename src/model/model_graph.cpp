#include "model/model_graph.h"

#include "common/logging.h"

namespace tcsim::model {

namespace {

/** Round @p x up to a multiple of @p unit. */
int
pad_to(int x, int unit)
{
    return ((x + unit - 1) / unit) * unit;
}

/** FP16 operand bytes of a logical element count. */
uint64_t
elem_bytes(uint64_t elems)
{
    return elems * 2;
}

/** The running activation between layers. */
struct Activation
{
    bool image = false;
    // Sequence form.
    int width = 0;
    int rows_per_request = 1;
    // Image form.
    int channels = 0, height = 0, wpix = 0;
    // Name of the tensor holding it.
    std::string tensor;
};

class Lowering
{
  public:
    Lowering(const ModelGraph& g, int batch, const std::string& prefix)
        : g_(g), batch_(batch), prefix_(prefix)
    {
    }

    LoweredModel run();

  private:
    [[noreturn]] void fail(size_t layer, const std::string& msg) const;

    int add_tensor(const std::string& name, uint64_t bytes);
    void add_gemm(const std::string& name, const std::string& family,
                  int m, int n, int k, TcMode mode, size_t layer,
                  std::vector<std::string> reads,
                  std::vector<std::string> writes);

    std::string layer_name(size_t i) const;

    void lower_linear(size_t i, const LayerSpec& l, TcMode mode);
    void lower_conv2d(size_t i, const LayerSpec& l, TcMode mode);
    void lower_attention(size_t i, const LayerSpec& l, TcMode mode);
    void lower_elementwise(size_t i, const LayerSpec& l, TcMode mode);

    const ModelGraph& g_;
    const int batch_;
    const std::string prefix_;
    LoweredModel out_;
    Activation act_;
};

void
Lowering::fail(size_t layer, const std::string& msg) const
{
    throw ModelError(detail::format(
        "model \"%s\" layer %zu (%s): %s", g_.name.c_str(), layer,
        layer < g_.layers.size()
            ? layer_kind_name(g_.layers[layer].kind)
            : "?",
        msg.c_str()));
}

int
Lowering::add_tensor(const std::string& name, uint64_t bytes)
{
    out_.tensors.push_back({prefix_ + name, bytes});
    return static_cast<int>(out_.tensors.size()) - 1;
}

void
Lowering::add_gemm(const std::string& name, const std::string& family,
                   int m, int n, int k, TcMode mode, size_t layer,
                   std::vector<std::string> reads,
                   std::vector<std::string> writes)
{
    LoweredKernel lk;
    lk.name = prefix_ + name;
    lk.family = family;
    lk.m = m;
    lk.n = n;
    lk.k = k;
    lk.mode = mode;
    lk.layer = static_cast<int>(layer);
    lk.flops = 2.0 * m * n * k;
    lk.reads = std::move(reads);
    lk.writes = std::move(writes);
    for (std::string& t : lk.reads)
        t = prefix_ + t;
    for (std::string& t : lk.writes)
        t = prefix_ + t;
    out_.total_flops += lk.flops;
    out_.kernels.push_back(std::move(lk));
}

std::string
Lowering::layer_name(size_t i) const
{
    const LayerSpec& l = g_.layers[i];
    if (!l.name.empty())
        return l.name;
    return std::string(layer_kind_name(l.kind)) + std::to_string(i);
}

void
Lowering::lower_linear(size_t i, const LayerSpec& l, TcMode mode)
{
    int in;
    if (act_.image) {
        // Flatten the image: one row per request from here on.
        in = act_.channels * act_.height * act_.wpix;
        act_.image = false;
        act_.rows_per_request = 1;
    } else {
        in = act_.width;
    }
    if (l.in_features != 0 && l.in_features != in)
        fail(i, detail::format(
                    "in_features=%d does not match incoming activation "
                    "width %d",
                    l.in_features, in));
    if (l.out_features <= 0)
        fail(i, "out_features must be positive");

    const std::string name = layer_name(i);
    const int rows = batch_ * act_.rows_per_request;
    const int m = pad_to(rows, 64);
    const int n = pad_to(l.out_features, 64);
    const int k = pad_to(in, 64);
    add_tensor(name + ".w",
               elem_bytes(static_cast<uint64_t>(in) * l.out_features));
    const std::string outt = name + ".out";
    add_tensor(outt,
               elem_bytes(static_cast<uint64_t>(rows) * l.out_features));
    add_gemm(name, "wmma_shared", m, n, k, mode, i,
             {act_.tensor, name + ".w"}, {outt});
    out_.last_kernel_of_layer.push_back(
        static_cast<int>(out_.kernels.size()) - 1);
    act_.width = l.out_features;
    act_.tensor = outt;
}

void
Lowering::lower_conv2d(size_t i, const LayerSpec& l, TcMode mode)
{
    if (!act_.image)
        fail(i, "conv2d requires an image activation (a conv2d stack "
                "must come before any linear/attention layer)");
    if (l.in_channels != 0 && l.in_channels != act_.channels)
        fail(i, detail::format(
                    "in_channels=%d does not match incoming activation "
                    "channels %d",
                    l.in_channels, act_.channels));
    if ((l.height != 0 && l.height != act_.height) ||
        (l.width != 0 && l.width != act_.wpix))
        fail(i, detail::format(
                    "height/width %dx%d do not match incoming "
                    "activation %dx%d",
                    l.height, l.width, act_.height, act_.wpix));
    if (l.out_channels <= 0)
        fail(i, "out_channels must be positive");
    if (l.kernel <= 0 || l.stride <= 0)
        fail(i, "kernel and stride must be positive");
    if (l.kernel > act_.height || l.kernel > act_.wpix)
        fail(i, detail::format("kernel %d exceeds activation %dx%d",
                               l.kernel, act_.height, act_.wpix));

    const int oh = (act_.height - l.kernel) / l.stride + 1;
    const int ow = (act_.wpix - l.kernel) / l.stride + 1;
    const int ic = act_.channels;
    const std::string name = layer_name(i);
    // im2col: [batch*oh*ow x ic*kh*kw] * [ic*kh*kw x oc].
    const int m = pad_to(batch_ * oh * ow, 64);
    const int n = pad_to(l.out_channels, 64);
    const int k = pad_to(ic * l.kernel * l.kernel, 16);
    add_tensor(name + ".w",
               elem_bytes(static_cast<uint64_t>(l.out_channels) * ic *
                          l.kernel * l.kernel));
    const std::string outt = name + ".out";
    add_tensor(outt, elem_bytes(static_cast<uint64_t>(batch_) *
                                l.out_channels * oh * ow));
    add_gemm(name, "wmma_shared", m, n, k, mode, i,
             {act_.tensor, name + ".w"}, {outt});
    out_.last_kernel_of_layer.push_back(
        static_cast<int>(out_.kernels.size()) - 1);
    act_.channels = l.out_channels;
    act_.height = oh;
    act_.wpix = ow;
    act_.tensor = outt;
}

void
Lowering::lower_attention(size_t i, const LayerSpec& l, TcMode mode)
{
    if (act_.image)
        fail(i, "attention requires a sequence activation (flatten "
                "through a linear layer first)");
    const int embed = l.embed_dim != 0 ? l.embed_dim : act_.width;
    if (embed != act_.width)
        fail(i, detail::format(
                    "embed_dim=%d does not match incoming activation "
                    "width %d",
                    embed, act_.width));
    if (l.heads <= 0 || embed % l.heads != 0)
        fail(i, detail::format("heads=%d must divide embed_dim=%d",
                               l.heads, embed));

    const std::string name = layer_name(i);
    const int tokens = act_.rows_per_request;
    const int rows = batch_ * tokens;
    const int m = pad_to(rows, 64);
    const int ke = pad_to(embed, 64);
    const int kt = pad_to(tokens, 64);

    add_tensor(name + ".wqkv",
               elem_bytes(static_cast<uint64_t>(embed) * 3 * embed));
    add_tensor(name + ".qkv",
               elem_bytes(static_cast<uint64_t>(rows) * 3 * embed));
    add_tensor(name + ".s",
               elem_bytes(static_cast<uint64_t>(rows) * tokens));
    add_tensor(name + ".ctx",
               elem_bytes(static_cast<uint64_t>(rows) * embed));
    add_tensor(name + ".wproj",
               elem_bytes(static_cast<uint64_t>(embed) * embed));
    const std::string outt = name + ".out";
    add_tensor(outt, elem_bytes(static_cast<uint64_t>(rows) * embed));

    // Four GEMMs; scores/context fold the per-head batch into one
    // launch so flops match 2 * batch * heads * t^2 * head_dim.
    add_gemm(name + ".qkv", "wmma_shared", m, pad_to(3 * embed, 64), ke,
             mode, i, {act_.tensor, name + ".wqkv"}, {name + ".qkv"});
    add_gemm(name + ".scores", "wmma_shared", m, kt, ke, mode, i,
             {name + ".qkv"}, {name + ".s"});
    add_gemm(name + ".ctx", "wmma_shared", m, ke, kt, mode, i,
             {name + ".s", name + ".qkv"}, {name + ".ctx"});
    add_gemm(name + ".proj", "wmma_shared", m, ke, ke, mode, i,
             {name + ".ctx", name + ".wproj"}, {outt});
    out_.last_kernel_of_layer.push_back(
        static_cast<int>(out_.kernels.size()) - 1);
    act_.tensor = outt;
}

void
Lowering::lower_elementwise(size_t i, const LayerSpec& l, TcMode mode)
{
    (void)l;
    const int width =
        act_.image ? act_.channels * act_.height * act_.wpix : act_.width;
    const int rows =
        act_.image ? batch_ : batch_ * act_.rows_per_request;
    const std::string name = layer_name(i);
    const std::string outt = name + ".out";
    add_tensor(outt, elem_bytes(static_cast<uint64_t>(rows) * width));
    // Thin k=16 naive-WMMA launch: a bandwidth-bound proxy that reads
    // the whole activation once and writes it once.
    add_gemm(name, "wmma_naive", pad_to(rows, 16), pad_to(width, 16), 16,
             mode, i, {act_.tensor}, {outt});
    out_.last_kernel_of_layer.push_back(
        static_cast<int>(out_.kernels.size()) - 1);
    act_.tensor = outt;
}

LoweredModel
Lowering::run()
{
    if (batch_ < 1)
        throw ModelError(detail::format(
            "model \"%s\": batch must be >= 1 (got %d)", g_.name.c_str(),
            batch_));
    if (g_.layers.empty())
        throw ModelError(detail::format(
            "model \"%s\": at least one layer is required",
            g_.name.c_str()));
    if (g_.tokens_per_request < 1)
        throw ModelError(detail::format(
            "model \"%s\": tokens_per_request must be >= 1 (got %d)",
            g_.name.c_str(), g_.tokens_per_request));

    // Establish the input activation.
    if (g_.layers[0].kind == LayerKind::kConv2d) {
        const LayerSpec& first = g_.layers[0];
        if (first.in_channels <= 0 || first.height <= 0 ||
            first.width <= 0)
            fail(0, "the first conv2d must declare in_channels, height "
                    "and width");
        act_.image = true;
        act_.channels = first.in_channels;
        act_.height = first.height;
        act_.wpix = first.width;
        // Unprefixed like every other act_.tensor: add_gemm prefixes
        // read/write sets when it materializes them.
        act_.tensor = "in";
        add_tensor("in", elem_bytes(static_cast<uint64_t>(batch_) *
                                    first.in_channels * first.height *
                                    first.width));
    } else {
        if (g_.input_features <= 0)
            throw ModelError(detail::format(
                "model \"%s\": input_features must be positive for "
                "sequence models",
                g_.name.c_str()));
        act_.width = g_.input_features;
        act_.rows_per_request = g_.tokens_per_request;
        act_.tensor = "in";
        add_tensor("in",
                   elem_bytes(static_cast<uint64_t>(batch_) *
                              g_.tokens_per_request * g_.input_features));
    }

    for (size_t i = 0; i < g_.layers.size(); ++i) {
        const LayerSpec& l = g_.layers[i];
        const TcMode mode = l.has_precision ? l.precision : g_.precision;
        if (mode != TcMode::kFp16 && mode != TcMode::kMixed)
            fail(i, "model layers lower to GEMM launches, which support "
                    "fp16/mixed precision only");
        switch (l.kind) {
          case LayerKind::kLinear:
            lower_linear(i, l, mode);
            break;
          case LayerKind::kConv2d:
            lower_conv2d(i, l, mode);
            break;
          case LayerKind::kAttention:
            lower_attention(i, l, mode);
            break;
          case LayerKind::kElementwise:
            lower_elementwise(i, l, mode);
            break;
        }
    }
    out_.num_layers = static_cast<int>(g_.layers.size());
    return std::move(out_);
}

}  // namespace

const char*
layer_kind_name(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kLinear:      return "linear";
      case LayerKind::kConv2d:      return "conv2d";
      case LayerKind::kAttention:   return "attention";
      case LayerKind::kElementwise: return "elementwise";
    }
    return "?";
}

LoweredModel
lower_model(const ModelGraph& graph, int batch_requests,
            const std::string& prefix)
{
    return Lowering(graph, batch_requests, prefix).run();
}

}  // namespace tcsim::model
