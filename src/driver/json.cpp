#include "driver/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tcsim {
namespace driver {

// ---- Accessors ----------------------------------------------------------

namespace {

const char*
type_name(JsonValue::Type t)
{
    switch (t) {
      case JsonValue::Type::kNull: return "null";
      case JsonValue::Type::kBool: return "bool";
      case JsonValue::Type::kNumber: return "number";
      case JsonValue::Type::kString: return "string";
      case JsonValue::Type::kArray: return "array";
      case JsonValue::Type::kObject: return "object";
    }
    return "?";
}

[[noreturn]] void
type_error(const char* want, JsonValue::Type got)
{
    throw JsonError(std::string("expected ") + want + ", got " +
                    type_name(got));
}

}  // namespace

bool
JsonValue::as_bool() const
{
    if (type_ != Type::kBool)
        type_error("bool", type_);
    return bool_;
}

double
JsonValue::as_number() const
{
    if (type_ != Type::kNumber)
        type_error("number", type_);
    return num_;
}

int64_t
JsonValue::as_int() const
{
    double d = as_number();
    if (std::nearbyint(d) != d || std::abs(d) > 9.007199254740992e15)
        throw JsonError("expected integer, got " + std::to_string(d));
    return static_cast<int64_t>(d);
}

const std::string&
JsonValue::as_string() const
{
    if (type_ != Type::kString)
        type_error("string", type_);
    return str_;
}

const std::vector<JsonValue>&
JsonValue::as_array() const
{
    if (type_ != Type::kArray)
        type_error("array", type_);
    return arr_;
}

const JsonValue::Members&
JsonValue::as_object() const
{
    if (type_ != Type::kObject)
        type_error("object", type_);
    return obj_;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (type_ != Type::kObject)
        return nullptr;
    for (const auto& [k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

void
JsonValue::push_back(JsonValue v)
{
    if (type_ != Type::kArray)
        type_error("array", type_);
    arr_.push_back(std::move(v));
}

void
JsonValue::set(const std::string& key, JsonValue v)
{
    if (type_ != Type::kObject)
        type_error("object", type_);
    for (auto& [k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

// ---- Writer -------------------------------------------------------------

std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace {

void
dump_number(std::string* out, double d)
{
    // JSON has no nan/inf literals; degrade to null.
    if (!std::isfinite(d)) {
        *out += "null";
        return;
    }
    if (std::nearbyint(d) == d && std::abs(d) < 9.007199254740992e15) {
        *out += std::to_string(static_cast<int64_t>(d));
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
}

void
newline_indent(std::string* out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void
JsonValue::dump_to(std::string* out, int indent, int depth) const
{
    switch (type_) {
      case Type::kNull:
        *out += "null";
        break;
      case Type::kBool:
        *out += bool_ ? "true" : "false";
        break;
      case Type::kNumber:
        dump_number(out, num_);
        break;
      case Type::kString:
        *out += '"';
        *out += json_escape(str_);
        *out += '"';
        break;
      case Type::kArray:
        *out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                *out += indent > 0 ? "," : ", ";
            newline_indent(out, indent, depth + 1);
            arr_[i].dump_to(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline_indent(out, indent, depth);
        *out += ']';
        break;
      case Type::kObject:
        *out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                *out += indent > 0 ? "," : ", ";
            newline_indent(out, indent, depth + 1);
            *out += '"';
            *out += json_escape(obj_[i].first);
            *out += "\": ";
            obj_[i].second.dump_to(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline_indent(out, indent, depth);
        *out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dump_to(&out, indent, 0);
    return out;
}

// ---- Parser -------------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text)
    {
        // Byte offsets of line starts: offset -> line:col becomes a
        // binary search, so every parsed value can be stamped with its
        // source position cheaply.
        line_starts_.push_back(0);
        for (size_t i = 0; i < text_.size(); ++i)
            if (text_[i] == '\n')
                line_starts_.push_back(i + 1);
    }

    JsonValue parse_document()
    {
        skip_ws();
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    /** 1-based line/column of byte offset @p at. */
    std::pair<int, int> position(size_t at) const
    {
        size_t lo = 0, hi = line_starts_.size();
        while (hi - lo > 1) {
            size_t mid = (lo + hi) / 2;
            (line_starts_[mid] <= at ? lo : hi) = mid;
        }
        return {static_cast<int>(lo) + 1,
                static_cast<int>(at - line_starts_[lo]) + 1};
    }

    [[noreturn]] void fail(const std::string& msg) const
    {
        auto [line, col] = position(std::min(pos_, text_.size()));
        throw JsonError(std::to_string(line) + ":" + std::to_string(col) +
                        ": " + msg);
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    char next()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_++];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void skip_ws()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                // Allow // line comments: scenarios are hand-written.
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    bool consume_literal(const char* lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue parse_value()
    {
        auto [line, col] = position(pos_);
        JsonValue v = parse_value_inner();
        v.set_pos(line, col);
        return v;
    }

    JsonValue parse_value_inner()
    {
        switch (peek()) {
          case '{': return parse_object();
          case '[': return parse_array();
          case '"': return JsonValue(parse_string());
          case 't':
            if (consume_literal("true"))
                return JsonValue(true);
            fail("invalid literal");
          case 'f':
            if (consume_literal("false"))
                return JsonValue(false);
            fail("invalid literal");
          case 'n':
            if (consume_literal("null"))
                return JsonValue();
            fail("invalid literal");
          default: return parse_number();
        }
    }

    JsonValue parse_object()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skip_ws();
            if (peek() != '"')
                fail("expected object key");
            std::string key = parse_string();
            if (obj.find(key))
                fail("duplicate key \"" + key + "\"");
            skip_ws();
            expect(':');
            skip_ws();
            obj.set(key, parse_value());
            skip_ws();
            char c = next();
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            skip_ws();
            arr.push_back(parse_value());
            skip_ws();
            char c = next();
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            char e = next();
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = next();
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point; surrogate halves
                // degrade to U+FFFD (scenario files are ASCII anyway).
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    cp = 0xFFFD;
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default: fail("invalid escape sequence");
            }
        }
    }

    JsonValue parse_number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        if (peek() == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            fail("invalid number: leading zero");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("invalid number: missing fraction digits");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("invalid number: missing exponent digits");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        try {
            return JsonValue(std::stod(text_.substr(start, pos_ - start)));
        } catch (const std::out_of_range&) {
            pos_ = start;
            fail("number out of range");
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
    std::vector<size_t> line_starts_;
};

}  // namespace

JsonValue
json_parse(const std::string& text)
{
    return Parser(text).parse_document();
}

bool
json_write_file_atomic(const JsonValue& v, const std::string& path,
                       int indent)
{
    std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return false;
    std::string text = v.dump(indent);
    text += '\n';
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    // fclose reports buffered-write failures (e.g. a full disk); only
    // a fully flushed temp file may replace the target.
    ok &= std::fclose(f) == 0;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

JsonValue
json_parse_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw JsonError(path + ": cannot open");
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        return json_parse(ss.str());
    } catch (const JsonError& e) {
        throw JsonError(path + ":" + e.what());
    }
}

}  // namespace driver
}  // namespace tcsim
