#include "driver/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "common/logging.h"
#include "kernels/gemm_problem.h"
#include "kernels/kernel_registry.h"
#include "metrics/metrics.h"
#include "sim/core/sm.h"
#include "sim/gpu.h"
#include "sim/worker_pool.h"
#include "tensor/types.h"

namespace tcsim {
namespace driver {

namespace {

/** Type-erased GEMM operand setup (accumulator type varies by mode). */
class GemmSetup
{
  public:
    virtual ~GemmSetup() = default;
    virtual GemmBuffers upload(GlobalMemory* mem) = 0;
    virtual double verify(const GlobalMemory& mem, uint64_t d_addr) = 0;
};

template <typename Acc>
class GemmSetupT : public GemmSetup
{
  public:
    GemmSetupT(const KernelSpec& spec)
        : prob_(spec.m, spec.n, spec.k, spec.a_layout, spec.b_layout,
                spec.cd_layout)
    {
    }

    GemmBuffers upload(GlobalMemory* mem) override
    {
        return prob_.upload(mem);
    }

    double verify(const GlobalMemory& mem, uint64_t d_addr) override
    {
        return prob_.verify(mem, d_addr);
    }

  private:
    GemmProblem<Acc> prob_;
};

/** Timing-only runs skip host data generation: bare allocations give
 *  the kernels valid, distinct address ranges.  Element widths come
 *  from the registry so the allocations cover exactly the address
 *  range each builder computes (sgemm_ffma addresses FP32 operands). */
GemmBuffers
alloc_only(const KernelSpec& spec, const KernelFamilyInfo& info,
           GlobalMemory* mem)
{
    const uint64_t ab_elem = info.ab_elem_bytes;
    // Only the WMMA families narrow C/D with TcMode; the SIMT
    // baselines fix their element width per family.
    uint64_t cd_elem = info.cd_elem_bytes;
    if (info.supports_functional && spec.mode == TcMode::kFp16)
        cd_elem = 2;
    GemmBuffers buf;
    buf.a = mem->alloc(static_cast<uint64_t>(spec.m) * spec.k * ab_elem);
    buf.b = mem->alloc(static_cast<uint64_t>(spec.k) * spec.n * ab_elem);
    buf.c = mem->alloc(static_cast<uint64_t>(spec.m) * spec.n * cd_elem);
    buf.d = mem->alloc(static_cast<uint64_t>(spec.m) * spec.n * cd_elem);
    return buf;
}

/** One prepared launch: descriptor plus deferred verification. */
struct PreparedKernel
{
    const KernelSpec* spec = nullptr;
    KernelDesc desc;
    std::unique_ptr<GemmSetup> setup;  ///< Functional GEMMs only.
    GemmBuffers buf;
    double flops = 0.0;
};

PreparedKernel
prepare_kernel(const KernelSpec& spec, Arch arch, GlobalMemory* mem)
{
    const KernelFamilyInfo* info = find_kernel_family(spec.family);
    TCSIM_CHECK(info != nullptr);  // Validated at parse time.

    PreparedKernel pk;
    pk.spec = &spec;
    if (info->is_gemm) {
        if (spec.functional) {
            if (spec.mode == TcMode::kFp16)
                pk.setup = std::make_unique<GemmSetupT<half>>(spec);
            else
                pk.setup = std::make_unique<GemmSetupT<float>>(spec);
            pk.buf = pk.setup->upload(mem);
        } else {
            pk.buf = alloc_only(spec, *info, mem);
        }
        GemmKernelConfig cfg;
        cfg.arch = arch;
        cfg.mode = spec.mode;
        cfg.m = spec.m;
        cfg.n = spec.n;
        cfg.k = spec.k;
        cfg.a_layout = spec.a_layout;
        cfg.b_layout = spec.b_layout;
        cfg.cd_layout = spec.cd_layout;
        cfg.functional = spec.functional;
        pk.desc =
            build_gemm_kernel(info->family, cfg, pk.buf, spec.warps_per_cta);
        pk.flops = gemm_flops(spec.m, spec.n, spec.k);
    } else {
        pk.desc = make_hmma_stress(arch, spec.mode, spec.ctas,
                                   spec.warps_per_cta, spec.wmma_per_warp,
                                   spec.accumulators);
        pk.flops = hmma_stress_flops(spec.ctas, spec.warps_per_cta,
                                     spec.wmma_per_warp);
    }
    pk.desc.name = spec.name;
    return pk;
}

/** Pre-check launchability with SM::fits so one oversubscribed
 *  scenario reports an error instead of taking down a whole batch
 *  through the engine's fatal() path. */
void
check_kernel_fits(const GpuConfig& cfg, const KernelDesc& k)
{
    if (!SM::fits(cfg, k))
        throw ScenarioError(
            "kernel \"" + k.name + "\" exceeds SM resources (warps=" +
            std::to_string(k.warps_per_cta) + " smem=" +
            std::to_string(k.shared_mem_bytes) + " regs_per_thread=" +
            std::to_string(k.regs_per_thread) + ")");
}

/** Per-reason stall-cycle lookup: @p field is the lower-case reason
 *  name from stall_reason_name (e.g. "mshr_full"). */
double
resolve_stall_metric(const StallCounts& stalls, const std::string& field,
                     const std::string& path)
{
    for (size_t i = 0; i < kNumStallReasons; ++i) {
        StallReason r = static_cast<StallReason>(i);
        if (field == stall_reason_name(r))
            return static_cast<double>(stalls[r]);
    }
    throw ScenarioError("unknown stall reason in metric \"" + path + "\"");
}

/** The exported MemStats counters: one declaration drives both the
 *  mem.* metric resolver and the report JSON (same pattern as
 *  kOverrideFields in scenario.cpp — a counter added here appears in
 *  both surfaces, one missed cannot diverge silently). */
struct MemCounter
{
    const char* name;
    uint64_t MemStats::* member;
};

constexpr MemCounter kMemCounters[] = {
    {"l1_hits", &MemStats::l1_hits},
    {"l1_misses", &MemStats::l1_misses},
    {"l2_hits", &MemStats::l2_hits},
    {"l2_misses", &MemStats::l2_misses},
    {"dram_bytes", &MemStats::dram_bytes},
    {"global_sectors", &MemStats::global_sectors},
    {"mshr_merges", &MemStats::mshr_merges},
    {"mshr_peak", &MemStats::mshr_peak},
    {"noc_queue_cycles", &MemStats::noc_queue_cycles},
    {"l2_queue_cycles", &MemStats::l2_queue_cycles},
    {"dram_queue_cycles", &MemStats::dram_queue_cycles},
    {"dram_turnarounds", &MemStats::dram_turnarounds},
};

double
resolve_mem_metric(const MemStats& m, const std::string& field,
                   const std::string& path)
{
    for (const MemCounter& c : kMemCounters)
        if (field == c.name)
            return static_cast<double>(m.*(c.member));
    throw ScenarioError("unknown mem metric \"" + path + "\"");
}

double
resolve_total_metric(const ScenarioResult& r, const std::string& field)
{
    const EngineStats& t = r.totals;
    if (field.rfind("stall.", 0) == 0)
        return resolve_stall_metric(t.stalls, field.substr(6),
                                    "total." + field);
    if (field == "cycles")
        return static_cast<double>(t.cycles);
    if (field == "instructions")
        return static_cast<double>(t.instructions);
    if (field == "hmma_instructions")
        return static_cast<double>(t.hmma_instructions);
    if (field == "ipc")
        return t.ipc;
    if (field == "tflops")
        return r.total_tflops;
    if (field == "ticks")
        return static_cast<double>(t.ticks);
    if (field == "skipped_cycles")
        return static_cast<double>(t.skipped_cycles);
    if (field == "stall_cycles")
        return static_cast<double>(t.stalls.total());
    throw ScenarioError("unknown total metric \"" + field + "\"");
}

double
resolve_kernel_metric(const KernelResult& k, const std::string& field)
{
    const LaunchStats& s = k.stats;
    if (field.rfind("stall.", 0) == 0)
        return resolve_stall_metric(s.stalls, field.substr(6),
                                    "kernel." + k.name + "." + field);
    if (field == "cycles")
        return static_cast<double>(s.cycles);
    if (field == "instructions")
        return static_cast<double>(s.instructions);
    if (field == "hmma_instructions")
        return static_cast<double>(s.hmma_instructions);
    if (field == "ipc")
        return s.ipc;
    if (field == "tflops")
        return k.tflops;
    if (field == "start_cycle")
        return static_cast<double>(s.start_cycle);
    if (field == "finish_cycle")
        return static_cast<double>(s.finish_cycle);
    if (field == "stream")
        return k.stream;
    if (field == "stall_cycles")
        return static_cast<double>(s.stalls.total());
    if (field == "verify_rel_err") {
        if (k.verify_rel_err < 0)
            throw ScenarioError("kernel \"" + k.name +
                                "\" did not verify (functional is false)");
        return k.verify_rel_err;
    }
    throw ScenarioError("unknown kernel metric \"" + field + "\"");
}

/** Canonical spelling of a percentile (99.5 -> "99.5", 99 -> "99"),
 *  used for both report keys and metric-path matching. */
std::string
format_pct(double pct)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", pct);
    return buf;
}

double
resolve_serve_metric(const ScenarioResult& r, const std::string& field,
                     const std::string& path)
{
    if (!r.has_serving)
        throw ScenarioError("metric \"" + path +
                            "\" needs a \"serving\" scenario");
    const serve::ServingReport& s = r.serving;
    const serve::LatencySummary& l = s.latency;
    if (field == "requests")
        return s.requests;
    if (field == "completed")
        return s.completed;
    if (field == "batches")
        return s.batches;
    if (field == "mean_batch_size")
        return s.mean_batch_size;
    if (field == "latency_p50")
        return static_cast<double>(l.latency_p50);
    if (field == "latency_p95")
        return static_cast<double>(l.latency_p95);
    if (field == "latency_p99")
        return static_cast<double>(l.latency_p99);
    if (field == "latency_p999")
        return static_cast<double>(l.latency_p999);
    if (field == "latency_max")
        return static_cast<double>(l.latency_max);
    if (field == "latency_mean")
        return l.latency_mean;
    // latency_p<pct>: any percentile the scenario listed in
    // serving.percentiles, spelled as written there (e.g. p99.5).
    if (field.rfind("latency_p", 0) == 0) {
        const std::string pct = field.substr(9);
        for (const auto& [p, v] : l.latency_extra)
            if (format_pct(p) == pct)
                return static_cast<double>(v);
        throw ScenarioError("metric \"" + path + "\": percentile " + pct +
                            " is not in serving.percentiles");
    }
    if (field == "queue_wait_p50")
        return static_cast<double>(l.queue_wait_p50);
    if (field == "queue_wait_p99")
        return static_cast<double>(l.queue_wait_p99);
    if (field == "queue_wait_max")
        return static_cast<double>(l.queue_wait_max);
    if (field == "queue_wait_mean")
        return l.queue_wait_mean;
    if (field == "queue_depth_peak")
        return l.queue_depth_peak;
    if (field == "queue_depth_mean")
        return l.queue_depth_mean;
    if (field == "makespan_cycles")
        return static_cast<double>(s.makespan_cycles);
    if (field == "busy_cycles")
        return static_cast<double>(s.busy_cycles);
    if (field == "busy_frac")
        return s.busy_frac;
    // Resilience outcomes exist only when the scenario declared a
    // serving.resilience object (reports stay byte-identical
    // otherwise).
    for (const char* m : {"deadline_miss", "goodput", "retries", "shed",
                          "dropped", "killed_batches"})
        if (field == m && !s.resilience)
            throw ScenarioError("metric \"" + path +
                                "\" needs a serving.resilience object");
    if (field == "deadline_miss")
        return s.deadline_miss;
    if (field == "goodput")
        return s.goodput;
    if (field == "retries")
        return s.retries;
    if (field == "shed")
        return s.shed;
    if (field == "dropped")
        return s.dropped;
    if (field == "killed_batches")
        return s.killed_batches;
    throw ScenarioError("unknown serve metric \"" + path + "\"");
}

double
resolve_fault_metric(const ScenarioResult& r, const std::string& field,
                     const std::string& path)
{
    if (!r.has_faults)
        throw ScenarioError("metric \"" + path +
                            "\" needs a \"faults\" object");
    const FaultCounters& f = r.fault_counters;
    if (field == "disabled_sms")
        return static_cast<double>(f.disabled_sms);
    if (field == "degraded_sms")
        return static_cast<double>(f.degraded_sms);
    if (field == "slowdowns")
        return static_cast<double>(f.slowdowns);
    if (field == "slowdown_extra_cycles")
        return static_cast<double>(f.slowdown_extra_cycles);
    if (field == "hangs")
        return static_cast<double>(f.hangs);
    if (field == "ecc_retries")
        return static_cast<double>(f.ecc_retries);
    if (field == "ecc_extra_cycles")
        return static_cast<double>(f.ecc_extra_cycles);
    throw ScenarioError("unknown fault metric \"" + path + "\"");
}

double
resolve_metric(const ScenarioResult& r, const std::string& path)
{
    if (path.rfind("serve.", 0) == 0)
        return resolve_serve_metric(r, path.substr(6), path);
    if (path.rfind("fault.", 0) == 0)
        return resolve_fault_metric(r, path.substr(6), path);
    if (path.rfind("total.", 0) == 0)
        return resolve_total_metric(r, path.substr(6));
    if (path.rfind("verify.", 0) == 0) {
        if (path.substr(7) != "max_rel_err")
            throw ScenarioError("unknown verify metric \"" + path + "\"");
        if (r.verify_max_rel_err < 0)
            throw ScenarioError("verify.max_rel_err: no functional kernel "
                                "ran");
        return r.verify_max_rel_err;
    }
    if (path.rfind("mem.", 0) == 0)
        return resolve_mem_metric(r.totals.mem, path.substr(4), path);
    if (path.rfind("kernel.", 0) == 0) {
        std::string rest = path.substr(7);
        // "stall.<reason>" is the one two-component field; split in
        // front of it so kernel names keep working with rfind.
        size_t dot = rest.find(".stall.");
        if (dot == std::string::npos)
            dot = rest.rfind('.');
        if (dot == std::string::npos)
            throw ScenarioError("bad metric path \"" + path + "\"");
        std::string name = rest.substr(0, dot);
        for (const KernelResult& k : r.kernels)
            if (k.name == name)
                return resolve_kernel_metric(k, rest.substr(dot + 1));
        throw ScenarioError("metric \"" + path +
                            "\": no kernel result named \"" + name + "\"");
    }
    if (path.rfind("event.", 0) == 0) {
        std::string rest = path.substr(6);
        size_t dot = rest.rfind('.');
        if (dot == std::string::npos || rest.substr(dot + 1) != "cycle")
            throw ScenarioError("bad metric path \"" + path +
                                "\" (want event.<name>.cycle)");
        std::string name = rest.substr(0, dot);
        for (const EventResult& e : r.events)
            if (e.name == name)
                return static_cast<double>(e.cycle);
        throw ScenarioError("metric \"" + path + "\": event \"" + name +
                            "\" never completed");
    }
    throw ScenarioError("bad metric path \"" + path + "\"");
}

/** Nominal FLOPs of one launch, straight from the spec (no prepared
 *  state needed — forked sweep points attribute prefix kernels they
 *  never prepared themselves). */
double
spec_flops(const KernelSpec& spec)
{
    const KernelFamilyInfo* info = find_kernel_family(spec.family);
    TCSIM_CHECK(info != nullptr);  // Validated at parse time.
    if (info->is_gemm)
        return gemm_flops(spec.m, spec.n, spec.k);
    return hmma_stress_flops(spec.ctas, spec.warps_per_cta,
                             spec.wmma_per_warp);
}

/** The scenario's non-zero stream ids, ascending: position in this
 *  list + 1 is the dense engine stream id — the mapping both the cold
 *  path (create_stream order) and the fork path (stream_by_id after
 *  restore) must agree on. */
std::vector<int>
nonzero_stream_ids(const std::vector<KernelSpec>& kernels)
{
    std::vector<int> ids;
    for (const KernelSpec& spec : kernels)
        if (spec.stream != 0)
            ids.push_back(spec.stream);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

/**
 * Wire the dependency DAG and enqueue @p prepared in declaration
 * order: named events find-or-create (a fork finds prefix events the
 * restore recreated); "sync" joins every stream with earlier launches
 * through per-join auto events.  @p launches_on counts enqueued
 * launches per scenario stream id — a fork seeds it with the prefix's
 * counts so joins still cover prefix-only streams.
 */
void
enqueue_kernels(Gpu* gpu, std::vector<PreparedKernel>* prepared,
                const std::map<int, Stream*>& streams,
                std::map<int, int>* launches_on)
{
    auto named_event = [&](const std::string& name) -> Event& {
        Event* ev = gpu->find_event(name);
        return ev ? *ev : gpu->create_event(name);
    };
    for (PreparedKernel& pk : *prepared) {
        const KernelSpec& spec = *pk.spec;
        Stream* stream = streams.at(spec.stream);
        if (spec.sync) {
            for (auto& [sid, other] : streams) {
                if (other == stream || (*launches_on)[sid] == 0)
                    continue;
                Event& join = gpu->create_event(
                    "sync:" + spec.name + ":s" + std::to_string(sid));
                other->record(join);
                stream->wait(join);
            }
        }
        for (const std::string& e : spec.wait_events)
            stream->wait(named_event(e));
        stream->enqueue(std::move(pk.desc));
        if (!spec.record_event.empty())
            stream->record(named_event(spec.record_event));
        ++(*launches_on)[spec.stream];
    }
}

/** Completion stamps of the scenario's named events (not the "sync:"
 *  auto joins), name order. */
void
collect_events(ScenarioResult* r, const Scenario& scenario, Gpu* gpu)
{
    std::set<std::string> names;
    for (const KernelSpec& spec : scenario.kernels) {
        if (!spec.record_event.empty())
            names.insert(spec.record_event);
        for (const std::string& e : spec.wait_events)
            names.insert(e);
    }
    for (const std::string& name : names) {
        Event* ev = gpu->find_event(name);
        if (ev && ev->complete())
            r->events.push_back(EventResult{name, ev->cycle()});
    }
}

/** Attribute per-kernel results from the run's LaunchStats (names are
 *  unique by schema) and fill the FLOPS-derived aggregates. */
void
attribute_kernels(ScenarioResult* r, const Scenario& scenario,
                  const GpuConfig& cfg)
{
    for (const KernelSpec& spec : scenario.kernels) {
        KernelResult kr;
        kr.name = spec.name;
        kr.family = spec.family;
        kr.stream = spec.stream;
        kr.flops = spec_flops(spec);
        for (const LaunchStats& ls : r->totals.kernels)
            if (ls.kernel == kr.name)
                kr.stats = ls;
        if (kr.stats.cycles > 0)
            kr.tflops =
                metrics::tflops(kr.flops,
                                static_cast<double>(kr.stats.cycles),
                                cfg.clock_ghz);
        r->total_flops += kr.flops;
        r->kernels.push_back(std::move(kr));
    }
    if (r->totals.cycles > 0)
        r->total_tflops =
            metrics::tflops(r->total_flops,
                            static_cast<double>(r->totals.cycles),
                            cfg.clock_ghz);
}

/** The serving path of run_scenario: build the trace and policy from
 *  the spec (wall-clock fields convert with the resolved core clock)
 *  and hand the whole run to serve::run_serving. */
void
run_serving_scenario(const Scenario& scenario, const GpuConfig& cfg,
                     const SimOptions& sim, ScenarioResult* result)
{
    const ServingSpec& ss = scenario.serving;
    std::vector<serve::Request> trace;
    if (ss.trace_kind == "poisson")
        trace = serve::poisson_trace(
            ss.seed, ss.requests,
            static_cast<double>(
                us_to_cycles(ss.mean_interarrival_us, cfg.clock_ghz)));
    else
        trace = ss.file_trace;

    std::unique_ptr<serve::BatchingPolicy> policy;
    if (ss.policy == "static")
        policy = std::make_unique<serve::StaticBatcher>(
            ss.batch, us_to_cycles(ss.timeout_us, cfg.clock_ghz));
    else
        policy = std::make_unique<serve::ContinuousBatcher>(ss.max_batch,
                                                            ss.max_in_flight);

    serve::ServingResilience res;
    if (ss.resilience) {
        res.deadline_cycles = us_to_cycles(ss.deadline_us, cfg.clock_ghz);
        res.batch_timeout_cycles =
            us_to_cycles(ss.batch_timeout_us, cfg.clock_ghz);
        res.max_retries = ss.max_retries;
        res.retry_backoff_cycles =
            us_to_cycles(ss.retry_backoff_us, cfg.clock_ghz);
        res.shed_queue_depth = ss.shed_queue_depth;
    }

    serve::ServingResult sr =
        serve::run_serving(cfg, sim, ss.model, trace, *policy,
                           ss.percentiles, res, scenario.faults);
    result->totals = sr.totals;
    result->serving = std::move(sr.report);
    result->has_serving = true;
    result->has_faults = sr.faults_enabled;
    if (sr.faults_enabled)
        result->fault_counters = sr.faults;
    result->total_flops = result->serving.total_flops;
    if (result->totals.cycles > 0)
        result->total_tflops = metrics::tflops(
            result->total_flops, static_cast<double>(result->totals.cycles),
            cfg.clock_ghz);
}

AssertionResult
evaluate(const ScenarioResult& r, const Expectation& e)
{
    AssertionResult a;
    a.metric = e.metric;
    a.value = resolve_metric(r, e.metric);
    a.passed = true;
    char buf[96];
    if (e.has_equals) {
        a.passed = a.value == e.equals;
        std::snprintf(buf, sizeof(buf), "== %.10g", e.equals);
        a.detail = buf;
    } else {
        std::string detail;
        if (e.has_min) {
            a.passed &= a.value >= e.min;
            std::snprintf(buf, sizeof(buf), ">= %.10g", e.min);
            detail = buf;
        }
        if (e.has_max) {
            a.passed &= a.value <= e.max;
            std::snprintf(buf, sizeof(buf), "<= %.10g", e.max);
            if (!detail.empty())
                detail += ", ";
            detail += buf;
        }
        a.detail = detail;
    }
    return a;
}

}  // namespace

ScenarioResult
run_scenario(const Scenario& scenario, int sim_threads_override,
             int detailed_sms_override, const ReplayOverride& replay,
             uint64_t wall_budget_ms)
{
    using clock = std::chrono::steady_clock;
    ScenarioResult result;
    result.name = scenario.name;
    result.file = scenario.file;
    SimOptions sim = scenario.sim;
    if (sim_threads_override >= 0)
        sim.sim_threads = sim_threads_override;
    if (detailed_sms_override >= 0)
        sim.detailed_sms = detailed_sms_override;
    if (wall_budget_ms > 0)
        sim.wall_budget_ms = wall_budget_ms;
    if (replay.mode >= 0)
        sim.replay_mode = static_cast<SimOptions::ReplayMode>(replay.mode);
    if (sim.replay_mode != SimOptions::ReplayMode::kOff)
        sim.replay_cache = replay.cache;  // null = engine-private cache
    result.replay_mode = static_cast<int>(sim.replay_mode);
    result.sim_threads =
        sim.sim_threads > 0 ? sim.sim_threads : hardware_threads();
    auto t0 = clock::now();

    try {
        GpuConfig cfg = scenario.gpu_config();
        result.clock_ghz = cfg.clock_ghz;

        if (scenario.is_serving()) {
            run_serving_scenario(scenario, cfg, sim, &result);
            for (const Expectation& e : scenario.expect)
                result.assertions.push_back(evaluate(result, e));
            result.passed = true;
            for (const AssertionResult& a : result.assertions)
                result.passed &= a.passed;
            result.wall_ms = std::chrono::duration<double, std::milli>(
                                 clock::now() - t0)
                                 .count();
            if (result.wall_ms > 0.0)
                result.ticks_per_sec =
                    static_cast<double>(result.totals.ticks) /
                    (result.wall_ms / 1000.0);
            return result;
        }

        Gpu gpu(cfg, sim, scenario.faults);

        std::vector<PreparedKernel> prepared;
        prepared.reserve(scenario.kernels.size());
        for (const KernelSpec& spec : scenario.kernels) {
            prepared.push_back(prepare_kernel(spec, cfg.arch, &gpu.mem()));
            check_kernel_fits(cfg, prepared.back().desc);
        }

        // Map scenario stream ids onto engine streams: 0 is the
        // implicit stream; the rest are created in ascending id order
        // so engine dispatch priority is deterministic.
        std::map<int, Stream*> streams;
        streams[0] = &gpu.default_stream();
        for (int id : nonzero_stream_ids(scenario.kernels))
            streams[id] = &gpu.create_stream();

        std::map<int, int> launches_on;  ///< Enqueued launches per stream.
        enqueue_kernels(&gpu, &prepared, streams, &launches_on);

        result.totals = gpu.run();

        result.has_faults = gpu.faults_enabled();
        if (result.has_faults)
            result.fault_counters = gpu.fault_counters();

        collect_events(&result, scenario, &gpu);
        attribute_kernels(&result, scenario, cfg);

        // Verify functional kernels against the host reference
        // (prepared[i] pairs with result.kernels[i]: both follow
        // declaration order).
        for (size_t i = 0; i < prepared.size(); ++i) {
            if (!prepared[i].setup)
                continue;
            KernelResult& kr = result.kernels[i];
            kr.verify_rel_err =
                prepared[i].setup->verify(gpu.mem(), prepared[i].buf.d);
            result.verify_max_rel_err =
                std::max(result.verify_max_rel_err, kr.verify_rel_err);
        }

        // Implicit assertion: every functional kernel verifies within
        // the scenario tolerance.
        if (result.verify_max_rel_err >= 0) {
            AssertionResult a;
            a.metric = "verify.max_rel_err";
            a.value = result.verify_max_rel_err;
            a.passed = result.verify_max_rel_err <= scenario.verify_tolerance;
            char buf[64];
            std::snprintf(buf, sizeof(buf), "<= %.3g (verify_tolerance)",
                          scenario.verify_tolerance);
            a.detail = buf;
            result.assertions.push_back(std::move(a));
        }
        for (const Expectation& e : scenario.expect)
            result.assertions.push_back(evaluate(result, e));

        result.passed = true;
        for (const AssertionResult& a : result.assertions)
            result.passed &= a.passed;
    } catch (const std::exception& e) {
        result.error = e.what();
        result.passed = false;
    }

    result.wall_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (result.wall_ms > 0.0)
        result.ticks_per_sec = static_cast<double>(result.totals.ticks) /
                               (result.wall_ms / 1000.0);
    return result;
}

namespace {

/**
 * Run one materialized sweep point as a fork: restore the prefix
 * snapshot onto a fresh Gpu, append the point's kernels to the
 * restored streams, and run to completion.  Global-memory allocation
 * resumes from the snapshotted bump pointer, so point buffers land at
 * the same addresses a cold run computes; statistics are attributed
 * over the merged (prefix + point) kernel list — prefix launches that
 * retired before the fork travel inside the snapshot's run state.
 */
ScenarioResult
run_forked_point(const Scenario& sc, size_t index, const GpuConfig& cfg,
                 const SimOptions& sim, const Snapshot& snap)
{
    using clock = std::chrono::steady_clock;
    Scenario merged = materialize_sweep_point(sc, index);
    ScenarioResult result;
    result.name = merged.name;
    result.file = merged.file;
    result.sim_threads =
        sim.sim_threads > 0 ? sim.sim_threads : hardware_threads();
    result.replay_mode = static_cast<int>(sim.replay_mode);
    auto t0 = clock::now();

    try {
        result.clock_ghz = cfg.clock_ghz;
        Gpu gpu(cfg, sim);
        gpu.restore(snap);

        const size_t n_prefix = sc.kernels.size();
        std::vector<PreparedKernel> prepared;
        prepared.reserve(merged.kernels.size() - n_prefix);
        for (size_t i = n_prefix; i < merged.kernels.size(); ++i) {
            prepared.push_back(
                prepare_kernel(merged.kernels[i], cfg.arch, &gpu.mem()));
            check_kernel_fits(cfg, prepared.back().desc);
        }

        // Rebuild the prefix's scenario-id → engine-stream mapping on
        // the restored stream set (points may not mint new ids, so the
        // prefix's mapping covers every point kernel).
        std::map<int, Stream*> streams;
        streams[0] = &gpu.stream_by_id(0);
        std::vector<int> ids = nonzero_stream_ids(sc.kernels);
        for (size_t i = 0; i < ids.size(); ++i)
            streams[ids[i]] = &gpu.stream_by_id(static_cast<int>(i) + 1);

        // Seed per-stream launch counts with the prefix's so a point
        // "sync" still joins prefix-only streams.
        std::map<int, int> launches_on;
        for (size_t i = 0; i < n_prefix; ++i)
            ++launches_on[merged.kernels[i].stream];

        enqueue_kernels(&gpu, &prepared, streams, &launches_on);

        result.totals = gpu.run();

        collect_events(&result, merged, &gpu);
        attribute_kernels(&result, merged, cfg);
        for (const Expectation& e : merged.expect)
            result.assertions.push_back(evaluate(result, e));
        result.passed = true;
        for (const AssertionResult& a : result.assertions)
            result.passed &= a.passed;
    } catch (const std::exception& e) {
        result.error = e.what();
        result.passed = false;
    }

    result.wall_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (result.wall_ms > 0.0)
        result.ticks_per_sec = static_cast<double>(result.totals.ticks) /
                               (result.wall_ms / 1000.0);
    return result;
}

}  // namespace

std::vector<ScenarioResult>
run_sweep(const Scenario& scenario, int jobs, int sim_threads_override,
          int detailed_sms_override, bool cold_sweep,
          const ReplayOverride& replay)
{
    const size_t npts = scenario.sweep.points.size();
    std::vector<ScenarioResult> out(npts);
    auto stamp = [&](size_t i, ScenarioResult r) {
        r.sweep_point = scenario.sweep.points[i].name;
        r.sweep_fork_cycle = scenario.sweep.fork_cycle;
        r.sweep_points = static_cast<int>(npts);
        r.sweep_forked = !cold_sweep;
        out[i] = std::move(r);
    };
    auto fail_point = [&](size_t i, const std::string& err) {
        ScenarioResult r;
        r.name = scenario.name + "/" + scenario.sweep.points[i].name;
        r.file = scenario.file;
        r.error = err;
        stamp(i, std::move(r));
    };
    auto fail_all = [&](const std::string& err) {
        for (size_t i = 0; i < npts; ++i)
            fail_point(i, err);
    };

    SimOptions sim = scenario.sim;
    if (sim_threads_override >= 0)
        sim.sim_threads = sim_threads_override;
    if (detailed_sms_override >= 0)
        sim.detailed_sms = detailed_sms_override;
    if (replay.mode >= 0)
        sim.replay_mode = static_cast<SimOptions::ReplayMode>(replay.mode);
    // Sweeps never share a cache across points: each engine owns a
    // private one, so every point's result is independent of how many
    // points ran before it (and of the batch-wide --replay-cache).
    sim.replay_cache = nullptr;

    GpuConfig cfg;
    try {
        cfg = scenario.gpu_config();
        // Pin one SM-array size across the prefix run and every point,
        // cold or forked: the array grows with pending CTAs and idle
        // SMs are timing-observable, so the fork (which sizes from the
        // prefix alone) and a cold rerun (which sizes from
        // prefix + point at cycle 0) would otherwise diverge.  Size
        // from the widest point, measured in prepared grid CTAs on a
        // scratch Gpu.
        Gpu scratch(cfg, sim);
        uint64_t prefix_ctas = 0;
        for (const KernelSpec& spec : scenario.kernels)
            prefix_ctas += static_cast<uint64_t>(
                prepare_kernel(spec, cfg.arch, &scratch.mem())
                    .desc.grid_ctas);
        uint64_t widest = 1;
        for (const SweepPoint& pt : scenario.sweep.points) {
            uint64_t ctas = prefix_ctas;
            for (const KernelSpec& spec : pt.kernels)
                ctas += static_cast<uint64_t>(
                    prepare_kernel(spec, cfg.arch, &scratch.mem())
                        .desc.grid_ctas);
            widest = std::max(
                widest,
                std::min<uint64_t>(static_cast<uint64_t>(cfg.num_sms), ctas));
        }
        sim.min_sms = std::max(sim.min_sms, static_cast<int>(widest));
    } catch (const std::exception& e) {
        fail_all(e.what());
        return out;
    }

    auto for_each_point = [&](auto&& fn) {
        size_t nthreads = std::min<size_t>(std::max(jobs, 1), npts);
        if (nthreads <= 1) {
            for (size_t i = 0; i < npts; ++i)
                fn(i);
            return;
        }
        std::atomic<size_t> next{0};
        std::vector<std::thread> threads;
        threads.reserve(nthreads);
        for (size_t t = 0; t < nthreads; ++t)
            threads.emplace_back([&] {
                for (;;) {
                    size_t i = next.fetch_add(1);
                    if (i >= npts)
                        return;
                    fn(i);
                }
            });
        for (std::thread& t : threads)
            t.join();
    };

    if (cold_sweep) {
        for_each_point([&](size_t i) {
            Scenario merged = materialize_sweep_point(scenario, i);
            merged.sim = sim;
            stamp(i, run_scenario(merged));
        });
        return out;
    }

    // Simulate the shared prefix once and snapshot it at fork_cycle.
    // The snapshot is a value with a shared immutable memory image, so
    // every point worker restores from the same object concurrently.
    Snapshot snap;
    try {
        Gpu prefix(cfg, sim);
        std::vector<PreparedKernel> prepared;
        prepared.reserve(scenario.kernels.size());
        for (const KernelSpec& spec : scenario.kernels) {
            prepared.push_back(prepare_kernel(spec, cfg.arch, &prefix.mem()));
            check_kernel_fits(cfg, prepared.back().desc);
        }
        std::map<int, Stream*> streams;
        streams[0] = &prefix.default_stream();
        for (int id : nonzero_stream_ids(scenario.kernels))
            streams[id] = &prefix.create_stream();
        std::map<int, int> launches_on;
        enqueue_kernels(&prefix, &prepared, streams, &launches_on);

        prefix.run_until(scenario.sweep.fork_cycle);
        if (!prefix.run_active())
            throw ScenarioError(
                "sweep.fork_cycle " +
                std::to_string(scenario.sweep.fork_cycle) +
                ": the prefix drained before the fork; lower fork_cycle "
                "so the snapshot captures a run still in progress");
        snap = prefix.snapshot();
    } catch (const std::exception& e) {
        fail_all(e.what());
        return out;
    }

    for_each_point([&](size_t i) {
        stamp(i, run_forked_point(scenario, i, cfg, sim, snap));
    });
    return out;
}

int
BatchReport::failed() const
{
    int n = 0;
    for (const ScenarioResult& r : results)
        n += (!r.passed && !r.skipped) ? 1 : 0;
    return n;
}

int
BatchReport::skipped() const
{
    int n = 0;
    for (const ScenarioResult& r : results)
        n += r.skipped ? 1 : 0;
    return n;
}

namespace {

/** Placeholder result for a scenario a --fail-fast stop skipped. */
ScenarioResult
skipped_result(const Scenario& sc)
{
    ScenarioResult r;
    r.name = sc.name;
    r.file = sc.file;
    r.skipped = true;
    r.error = "skipped: an earlier scenario failed (--fail-fast)";
    return r;
}

}  // namespace

int
effective_jobs(const BatchOptions& opts,
               const std::vector<Scenario>& scenarios)
{
    int hw = hardware_threads();
    int jobs = std::max(1, opts.jobs);
    // An explicit jobs request floors the default budget: batches of
    // *serial* simulations keep exactly the worker count they asked
    // for (oversubscribing with more scenarios than cores is a valid,
    // pre-existing use).  The clamp below only redistributes the
    // budget when intra-sim threads would multiply it.
    int budget = opts.thread_budget > 0 ? opts.thread_budget
                                        : std::max(hw, jobs);
    // The widest simulation the batch will run: the override if set,
    // else the largest per-scenario request (0 = auto = hw).
    int per_sim = 1;
    if (opts.sim_threads >= 0) {
        per_sim = opts.sim_threads == 0 ? hw : opts.sim_threads;
    } else {
        for (const Scenario& sc : scenarios) {
            int t = sc.sim.sim_threads == 0 ? hw : sc.sim.sim_threads;
            per_sim = std::max(per_sim, t);
        }
    }
    // Intra-sim width wins the budget; batch parallelism yields (one
    // big scenario bounding the batch is exactly the case the worker
    // pool exists for).
    return std::max(1, std::min(jobs, budget / std::max(1, per_sim)));
}

BatchReport
run_batch(const std::vector<Scenario>& scenarios, const BatchOptions& opts)
{
    using clock = std::chrono::steady_clock;
    const bool fail_fast = opts.fail_fast;
    const int sim_threads = opts.sim_threads;
    BatchReport report;
    report.jobs = effective_jobs(opts, scenarios);
    auto t0 = clock::now();

    // One slot per input scenario; sweeps expand to several results,
    // flattened in input order after the pool drains.
    std::vector<std::vector<ScenarioResult>> slots(scenarios.size());

    // Set once a failure is observed; workers stop *starting* new
    // scenarios but finish the one they are on.
    std::atomic<bool> stop{false};

    // @p point_jobs: batch workers already saturated the budget when
    // > 1 scenario is in flight, so only the serial branch lets a
    // sweep fan its points out.
    auto run_slot = [&](size_t i, int point_jobs) {
        const Scenario& sc = scenarios[i];
        if (stop.load(std::memory_order_relaxed)) {
            slots[i] = {skipped_result(sc)};
            return;
        }
        if (sc.is_sweep())
            slots[i] = run_sweep(sc, point_jobs, sim_threads,
                                 opts.detailed_sms, opts.cold_sweep,
                                 opts.replay);
        else
            slots[i] = {run_scenario(sc, sim_threads, opts.detailed_sms,
                                     opts.replay, opts.timeout_ms)};
        if (fail_fast)
            for (const ScenarioResult& r : slots[i])
                if (!r.passed)
                    stop.store(true, std::memory_order_relaxed);
    };

    if (report.jobs == 1 || scenarios.size() <= 1) {
        for (size_t i = 0; i < scenarios.size(); ++i)
            run_slot(i, report.jobs);
    } else {
        // One simulator instance per in-flight scenario; workers pull
        // indices from a shared counter and write disjoint slots.
        std::atomic<size_t> next{0};
        auto worker = [&] {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= scenarios.size())
                    return;
                run_slot(i, 1);
            }
        };
        size_t nthreads =
            std::min<size_t>(report.jobs, scenarios.size());
        std::vector<std::thread> threads;
        threads.reserve(nthreads);
        for (size_t t = 0; t < nthreads; ++t)
            threads.emplace_back(worker);
        for (std::thread& t : threads)
            t.join();
    }

    for (std::vector<ScenarioResult>& slot : slots)
        for (ScenarioResult& r : slot)
            report.results.push_back(std::move(r));

    report.wall_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    return report;
}

BatchReport
run_batch(const std::vector<Scenario>& scenarios, int jobs, bool fail_fast)
{
    BatchOptions opts;
    opts.jobs = jobs;
    opts.fail_fast = fail_fast;
    return run_batch(scenarios, opts);
}

JsonValue
report_to_json(const BatchReport& report)
{
    JsonValue root = JsonValue::object();
    root.set("schema", "tcsim-batch-report-v1");
    root.set("jobs", report.jobs);
    root.set("wall_ms", report.wall_ms);
    root.set("scenarios", static_cast<int64_t>(report.results.size()));
    root.set("failed", report.failed());
    if (report.skipped() > 0)
        root.set("skipped", report.skipped());

    JsonValue results = JsonValue::array();
    for (const ScenarioResult& r : report.results) {
        JsonValue jr = JsonValue::object();
        jr.set("name", r.name);
        if (!r.file.empty())
            jr.set("file", r.file);
        jr.set("passed", r.passed);
        if (r.skipped)
            jr.set("skipped", true);
        if (!r.error.empty())
            jr.set("error", r.error);
        jr.set("wall_ms", r.wall_ms);

        // Sweep identity: which point this result expands.  Outside
        // "sim" — a forked and a cold run of the same point must agree
        // on it.
        if (!r.sweep_point.empty()) {
            JsonValue sweep = JsonValue::object();
            sweep.set("point", r.sweep_point);
            sweep.set("fork_cycle", r.sweep_fork_cycle);
            sweep.set("points", r.sweep_points);
            jr.set("sweep", std::move(sweep));
        }

        // Simulation-speed telemetry (CI artifacts chart speedups from
        // these).  Wall-clock shaped: tools/report_diff.py strips the
        // whole "sim" key, so run-dependent fields belong in here —
        // everything outside it must be identical across runs
        // (including "forked": the fork-identity leg diffs a forked
        // sweep against a cold one).
        JsonValue sim = JsonValue::object();
        sim.set("wall_ms", r.wall_ms);
        sim.set("ticks_per_sec", r.ticks_per_sec);
        sim.set("sim_threads", r.sim_threads);
        if (!r.sweep_point.empty())
            sim.set("forked", r.sweep_forked);
        jr.set("sim", std::move(sim));

        JsonValue totals = JsonValue::object();
        totals.set("cycles", r.totals.cycles);
        totals.set("instructions", r.totals.instructions);
        totals.set("hmma_instructions", r.totals.hmma_instructions);
        totals.set("ipc", r.totals.ipc);
        totals.set("tflops", r.total_tflops);
        totals.set("ticks", r.totals.ticks);
        totals.set("skipped_cycles", r.totals.skipped_cycles);
        totals.set("stall_cycles", r.totals.stalls.total());
        if (r.totals.stalls.total() > 0) {
            JsonValue stalls = JsonValue::object();
            for (size_t i = 0; i < kNumStallReasons; ++i) {
                StallReason reason = static_cast<StallReason>(i);
                if (r.totals.stalls[reason] > 0)
                    stalls.set(stall_reason_name(reason),
                               r.totals.stalls[reason]);
            }
            totals.set("stalls", std::move(stalls));
        }
        jr.set("total", std::move(totals));

        // Run-wide memory-hierarchy counters (the transaction path).
        const MemStats& m = r.totals.mem;
        JsonValue mem = JsonValue::object();
        for (const MemCounter& c : kMemCounters)
            mem.set(c.name, m.*(c.member));
        jr.set("mem", std::move(mem));

        // Replay cache (only when the run had it enabled, so replay-off
        // reports stay byte-identical to pre-replay ones).
        if (r.replay_mode != 0) {
            static const char* kModeNames[] = {"off", "record", "replay",
                                               "verify"};
            JsonValue replay = JsonValue::object();
            replay.set("mode", kModeNames[r.replay_mode & 3]);
            replay.set("hits", r.totals.replay_hits);
            replay.set("misses", r.totals.replay_misses);
            replay.set("verified", r.totals.replay_verified);
            jr.set("replay", std::move(replay));
        }

        // Serving scenarios: summary + per-request/batch timelines.
        // Deliberately outside "sim" — every field is a function of
        // simulated cycles, so the parallel-identity legs diff it.
        if (r.has_serving) {
            const serve::ServingReport& s = r.serving;
            const serve::LatencySummary& l = s.latency;
            JsonValue js = JsonValue::object();
            js.set("policy", s.policy);
            js.set("requests", s.requests);
            js.set("completed", s.completed);
            js.set("batches", s.batches);
            js.set("mean_batch_size", s.mean_batch_size);
            js.set("makespan_cycles", s.makespan_cycles);
            js.set("busy_cycles", s.busy_cycles);
            js.set("busy_frac", s.busy_frac);
            js.set("flops", s.total_flops);

            // Resilience outcome (only when the scenario declared
            // serving.resilience — resilience-off reports stay
            // byte-identical to pre-resilience ones).
            if (s.resilience) {
                JsonValue jres = JsonValue::object();
                jres.set("deadline_miss", s.deadline_miss);
                jres.set("goodput", s.goodput);
                jres.set("retries", s.retries);
                jres.set("shed", s.shed);
                jres.set("dropped", s.dropped);
                jres.set("killed_batches", s.killed_batches);
                js.set("resilience", std::move(jres));
            }

            JsonValue lat = JsonValue::object();
            lat.set("p50", l.latency_p50);
            lat.set("p95", l.latency_p95);
            lat.set("p99", l.latency_p99);
            lat.set("p999", l.latency_p999);
            for (const auto& [pct, v] : l.latency_extra)
                lat.set("p" + format_pct(pct), v);
            lat.set("max", l.latency_max);
            lat.set("mean", l.latency_mean);
            js.set("latency_cycles", std::move(lat));

            JsonValue qw = JsonValue::object();
            qw.set("p50", l.queue_wait_p50);
            qw.set("p99", l.queue_wait_p99);
            qw.set("max", l.queue_wait_max);
            qw.set("mean", l.queue_wait_mean);
            js.set("queue_wait_cycles", std::move(qw));

            JsonValue qd = JsonValue::object();
            qd.set("peak", l.queue_depth_peak);
            qd.set("mean", l.queue_depth_mean);
            js.set("queue_depth", std::move(qd));

            JsonValue reqs = JsonValue::array();
            for (const serve::RequestRecord& q : s.request_records) {
                JsonValue jq = JsonValue::object();
                jq.set("id", q.id);
                jq.set("arrival_cycle", q.arrival_cycle);
                jq.set("admit_cycle", q.admit_cycle);
                jq.set("finish_cycle", q.finish_cycle);
                jq.set("batch", q.batch);
                if (s.resilience) {
                    jq.set("retries", q.retries);
                    jq.set("shed", q.shed);
                    jq.set("dropped", q.dropped);
                    jq.set("deadline_missed", q.deadline_missed);
                }
                reqs.push_back(std::move(jq));
            }
            js.set("request_records", std::move(reqs));

            JsonValue batches = JsonValue::array();
            for (const serve::BatchRecord& b : s.batch_records) {
                JsonValue jb = JsonValue::object();
                jb.set("id", b.id);
                jb.set("admit_cycle", b.admit_cycle);
                jb.set("finish_cycle", b.finish_cycle);
                jb.set("size", b.size);
                if (s.resilience)
                    jb.set("killed", b.killed);
                batches.push_back(std::move(jb));
            }
            js.set("batch_records", std::move(batches));

            JsonValue queue = JsonValue::array();
            for (const serve::QueueSample& q : s.queue_timeline) {
                JsonValue jq = JsonValue::object();
                jq.set("cycle", q.cycle);
                jq.set("depth", q.depth);
                queue.push_back(std::move(jq));
            }
            js.set("queue_timeline", std::move(queue));

            JsonValue occ = JsonValue::array();
            for (const serve::OccupancySample& o : s.occupancy) {
                JsonValue jo = JsonValue::object();
                jo.set("cycle", o.cycle);
                jo.set("running", o.running);
                occ.push_back(std::move(jo));
            }
            js.set("occupancy", std::move(occ));

            jr.set("serve", std::move(js));
        }

        // Fault-injection telemetry (only when the scenario declared
        // "faults" — healthy-chip reports stay byte-identical).
        // Outside "sim": every counter is a function of simulated
        // cycles, so the fault-identity leg diffs it.
        if (r.has_faults) {
            const FaultCounters& f = r.fault_counters;
            JsonValue jf = JsonValue::object();
            jf.set("disabled_sms", f.disabled_sms);
            jf.set("degraded_sms", f.degraded_sms);
            jf.set("slowdowns", f.slowdowns);
            jf.set("slowdown_extra_cycles", f.slowdown_extra_cycles);
            jf.set("hangs", f.hangs);
            jf.set("ecc_retries", f.ecc_retries);
            jf.set("ecc_extra_cycles", f.ecc_extra_cycles);
            jr.set("fault", std::move(jf));
        }

        JsonValue kernels = JsonValue::array();
        for (const KernelResult& k : r.kernels) {
            JsonValue jk = JsonValue::object();
            jk.set("name", k.name);
            jk.set("family", k.family);
            jk.set("stream", k.stream);
            jk.set("start_cycle", k.stats.start_cycle);
            jk.set("finish_cycle", k.stats.finish_cycle);
            jk.set("cycles", k.stats.cycles);
            jk.set("instructions", k.stats.instructions);
            jk.set("hmma_instructions", k.stats.hmma_instructions);
            jk.set("ipc", k.stats.ipc);
            jk.set("tflops", k.tflops);
            jk.set("stall_cycles", k.stats.stalls.total());
            if (k.stats.stalls.total() > 0) {
                JsonValue stalls = JsonValue::object();
                for (size_t i = 0; i < kNumStallReasons; ++i) {
                    StallReason reason = static_cast<StallReason>(i);
                    if (k.stats.stalls[reason] > 0)
                        stalls.set(stall_reason_name(reason),
                                   k.stats.stalls[reason]);
                }
                jk.set("stalls", std::move(stalls));
            }
            if (k.verify_rel_err >= 0)
                jk.set("verify_rel_err", k.verify_rel_err);
            kernels.push_back(std::move(jk));
        }
        jr.set("kernels", std::move(kernels));

        if (!r.events.empty()) {
            JsonValue events = JsonValue::array();
            for (const EventResult& e : r.events) {
                JsonValue je = JsonValue::object();
                je.set("name", e.name);
                je.set("cycle", e.cycle);
                events.push_back(std::move(je));
            }
            jr.set("events", std::move(events));
        }

        JsonValue assertions = JsonValue::array();
        for (const AssertionResult& a : r.assertions) {
            JsonValue ja = JsonValue::object();
            ja.set("metric", a.metric);
            ja.set("value", a.value);
            ja.set("bound", a.detail);
            ja.set("passed", a.passed);
            assertions.push_back(std::move(ja));
        }
        jr.set("assertions", std::move(assertions));
        results.push_back(std::move(jr));
    }
    root.set("results", std::move(results));
    return root;
}

bool
write_report_file(const BatchReport& report, const std::string& path)
{
    if (!json_write_file_atomic(report_to_json(report), path, 2)) {
        warn("cannot write report %s", path.c_str());
        return false;
    }
    return true;
}

}  // namespace driver
}  // namespace tcsim
