#include "driver/taskgraph.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "driver/scenario.h"
#include "sim/graph/task_graph.h"

namespace tcsim {
namespace driver {

namespace {

[[noreturn]] void
fail_at(const std::string& file, int line, int col, const std::string& msg)
{
    std::string pos;
    if (line > 0)
        pos = std::to_string(line) + ":" + std::to_string(col) + ": ";
    throw ScenarioError(file.empty() ? pos + msg : file + ":" + pos + msg);
}

}  // namespace

void
compile_taskgraph(Scenario* sc, const std::string& file)
{
    TaskGraph g;

    // Tensor arena.  Declaration order matters: bump placement and
    // alias_of resolution both scan forward.
    for (const TensorSpec& t : sc->tensors) {
        try {
            if (!t.alias_of.empty()) {
                int base = g.find_tensor(t.alias_of);
                if (base < 0)
                    fail_at(file, t.line, t.col,
                            "tensor \"" + t.name +
                                "\": alias_of references unknown tensor \"" +
                                t.alias_of +
                                "\" (bases must be declared first)");
                g.declare_view(t.name, base, t.offset, t.bytes);
            } else if (t.placed) {
                g.place_tensor(t.name, t.address, t.bytes);
            } else {
                g.declare_tensor(t.name, t.bytes);
            }
        } catch (const TaskGraphError& e) {
            fail_at(file, t.line, t.col, e.what());
        }
    }

    // Tasks.  One per kernel, declaration order = program order.
    for (size_t i = 0; i < sc->kernels.size(); ++i) {
        const KernelSpec& k = sc->kernels[i];
        int task = g.add_task(k.name);
        auto use = [&](const std::vector<std::string>& names, bool write) {
            for (const std::string& n : names) {
                int t = g.find_tensor(n);
                if (t < 0)
                    fail_at(file, k.line, k.col,
                            "kernel \"" + k.name + "\" " +
                                (write ? "writes" : "reads") +
                                " unknown tensor \"" + n + "\"");
                if (write)
                    g.task_writes(task, t);
                else
                    g.task_reads(task, t);
            }
        };
        use(k.reads, /*write=*/false);
        use(k.writes, /*write=*/true);
        if (k.reads.empty() && k.writes.empty())
            fail_at(file, k.line, k.col,
                    "kernel \"" + k.name +
                        "\": declarative scenarios require every kernel to "
                        "declare \"reads\" and/or \"writes\"");
    }

    // Explicit record/wait plumbing in declarative form: record_event
    // names the task's compiled event; wait_event is an *audited
    // annotation* — the compiler derives the real dependencies and
    // reports declared edges no hazard backs as false serialization.
    std::map<std::string, int> explicit_record;
    for (size_t i = 0; i < sc->kernels.size(); ++i) {
        const KernelSpec& k = sc->kernels[i];
        if (k.record_event.empty())
            continue;
        if (!explicit_record.emplace(k.record_event, static_cast<int>(i))
                 .second)
            fail_at(file, k.line, k.col,
                    "duplicate record_event \"" + k.record_event + "\"");
    }
    for (size_t i = 0; i < sc->kernels.size(); ++i) {
        const KernelSpec& k = sc->kernels[i];
        for (const std::string& e : k.wait_events) {
            auto it = explicit_record.find(e);
            if (it == explicit_record.end() ||
                it->second >= static_cast<int>(i))
                fail_at(file, k.line, k.col,
                        "kernel \"" + k.name + "\" waits on \"" + e +
                            "\", which no earlier kernel records "
                            "(declarative wait_event only annotates an "
                            "edge for audit)");
            g.declare_edge(it->second, static_cast<int>(i));
        }
    }

    TaskGraph::Compiled plan;
    try {
        plan = g.compile();
    } catch (const TaskGraphError& e) {
        int line = 0, col = 0;
        if (e.task() >= 0 &&
            e.task() < static_cast<int>(sc->kernels.size())) {
            line = sc->kernels[static_cast<size_t>(e.task())].line;
            col = sc->kernels[static_cast<size_t>(e.task())].col;
        } else if (e.tensor() >= 0 &&
                   e.tensor() < static_cast<int>(sc->tensors.size())) {
            line = sc->tensors[static_cast<size_t>(e.tensor())].line;
            col = sc->tensors[static_cast<size_t>(e.tensor())].col;
        }
        fail_at(file, line, col, e.what());
    }

    // Final event names.  An explicit record_event wins (and is always
    // recorded, so event.<name>.cycle metrics work without a
    // consumer); a derived "<task>_done" that collides with some other
    // task's explicit name falls back to "tg:<task>".
    const size_t n = sc->kernels.size();
    std::set<std::string> taken;
    for (const auto& [name, task] : explicit_record)
        taken.insert(name);
    std::vector<std::string> final_name(n);
    std::map<std::string, std::string> rename;
    for (size_t t = 0; t < n; ++t) {
        const std::string& exp = sc->kernels[t].record_event;
        if (!exp.empty()) {
            final_name[t] = exp;
        } else if (!plan.record_event[t].empty()) {
            std::string name = plan.record_event[t];
            while (taken.count(name))
                name = "tg:" + name;
            final_name[t] = name;
            taken.insert(name);
        }
        if (!plan.record_event[t].empty())
            rename[plan.record_event[t]] = final_name[t];
    }

    // Lower the plan onto the legacy KernelSpec fields: from here the
    // runner and engine see exactly what a hand-written scenario would
    // have spelled out.
    for (size_t t = 0; t < n; ++t) {
        KernelSpec& k = sc->kernels[t];
        k.stream = plan.stream_of[t];
        k.record_event = final_name[t];
        k.wait_events.clear();
        for (const std::string& w : plan.wait_events[t])
            k.wait_events.push_back(rename.at(w));
        k.sync = false;
    }

    // DAG for --dump-dag and the false-serialization report.
    sc->dag = TaskGraphDag{};
    sc->dag.compiled = true;
    sc->dag.num_streams = plan.num_streams;
    sc->dag.tensors = sc->tensors;
    for (size_t i = 0; i < sc->dag.tensors.size(); ++i)
        sc->dag.tensors[i].address = g.tensor_address(static_cast<int>(i));
    for (const TaskGraph::Edge& e : plan.edges) {
        DagEdge d;
        d.from = sc->kernels[static_cast<size_t>(e.from)].name;
        d.to = sc->kernels[static_cast<size_t>(e.to)].name;
        d.kind = hazard_kind_name(e.kind);
        d.tensor = g.tensor_name(e.tensor);
        d.cross_stream = e.cross_stream;
        if (e.needs_event)
            d.event = final_name[static_cast<size_t>(e.from)];
        sc->dag.edges.push_back(std::move(d));
    }
    for (const TaskGraph::FalseEdge& fe : plan.false_serialization) {
        const std::string& from =
            sc->kernels[static_cast<size_t>(fe.from)].name;
        const std::string& to = sc->kernels[static_cast<size_t>(fe.to)].name;
        warn("%s: declared edge \"%s\" -> \"%s\" is false serialization: "
             "no data hazard requires it",
             file.empty() ? sc->name.c_str() : file.c_str(), from.c_str(),
             to.c_str());
        sc->dag.false_serialization.emplace_back(from, to);
    }
}

TaskGraphDag
build_dag(const Scenario& sc)
{
    if (sc.dag.compiled)
        return sc.dag;

    // Legacy scenario: synthesize the DAG the explicit plumbing spells
    // out — wait_event edges from the recording kernel, sync edges
    // from every prior launch.
    TaskGraphDag dag;
    std::set<int> streams;
    for (const KernelSpec& k : sc.kernels)
        streams.insert(k.stream);
    dag.num_streams = static_cast<int>(streams.size());
    for (size_t i = 0; i < sc.kernels.size(); ++i) {
        const KernelSpec& k = sc.kernels[i];
        for (const std::string& e : k.wait_events) {
            // Last earlier recorder wins, like the stream op order.
            for (size_t j = i; j-- > 0;) {
                if (sc.kernels[j].record_event != e)
                    continue;
                DagEdge d;
                d.from = sc.kernels[j].name;
                d.to = k.name;
                d.kind = "event";
                d.cross_stream = sc.kernels[j].stream != k.stream;
                d.event = e;
                dag.edges.push_back(std::move(d));
                break;
            }
        }
        if (k.sync) {
            for (size_t j = 0; j < i; ++j) {
                DagEdge d;
                d.from = sc.kernels[j].name;
                d.to = k.name;
                d.kind = "sync";
                d.cross_stream = sc.kernels[j].stream != k.stream;
                dag.edges.push_back(std::move(d));
            }
        }
    }
    return dag;
}

JsonValue
dag_to_json(const Scenario& sc, const TaskGraphDag& dag)
{
    JsonValue doc = JsonValue::object();
    doc.set("scenario", sc.name);
    doc.set("declarative", dag.compiled);
    doc.set("num_streams", dag.num_streams);

    JsonValue tensors = JsonValue::array();
    for (const TensorSpec& t : dag.tensors) {
        JsonValue o = JsonValue::object();
        o.set("name", t.name);
        o.set("bytes", t.bytes);
        o.set("address", t.address);
        if (!t.alias_of.empty()) {
            o.set("alias_of", t.alias_of);
            o.set("offset", t.offset);
        }
        tensors.push_back(std::move(o));
    }
    doc.set("tensors", std::move(tensors));

    JsonValue tasks = JsonValue::array();
    for (const KernelSpec& k : sc.kernels) {
        JsonValue o = JsonValue::object();
        o.set("name", k.name);
        o.set("stream", k.stream);
        JsonValue reads = JsonValue::array();
        for (const std::string& r : k.reads)
            reads.push_back(r);
        o.set("reads", std::move(reads));
        JsonValue writes = JsonValue::array();
        for (const std::string& w : k.writes)
            writes.push_back(w);
        o.set("writes", std::move(writes));
        if (!k.record_event.empty())
            o.set("record_event", k.record_event);
        JsonValue waits = JsonValue::array();
        for (const std::string& w : k.wait_events)
            waits.push_back(w);
        o.set("wait_events", std::move(waits));
        tasks.push_back(std::move(o));
    }
    doc.set("tasks", std::move(tasks));

    JsonValue edges = JsonValue::array();
    for (const DagEdge& e : dag.edges) {
        JsonValue o = JsonValue::object();
        o.set("from", e.from);
        o.set("to", e.to);
        o.set("kind", e.kind);
        if (!e.tensor.empty())
            o.set("tensor", e.tensor);
        o.set("cross_stream", e.cross_stream);
        if (!e.event.empty())
            o.set("event", e.event);
        edges.push_back(std::move(o));
    }
    doc.set("edges", std::move(edges));

    JsonValue false_ser = JsonValue::array();
    for (const auto& [from, to] : dag.false_serialization) {
        JsonValue o = JsonValue::object();
        o.set("from", from);
        o.set("to", to);
        false_ser.push_back(std::move(o));
    }
    doc.set("false_serialization", std::move(false_ser));
    return doc;
}

std::string
dag_to_dot(const Scenario& sc, const TaskGraphDag& dag)
{
    auto q = [](const std::string& s) { return "\"" + json_escape(s) + "\""; };
    std::string out;
    out += "digraph " + q(sc.name) + " {\n";
    out += "  rankdir=LR;\n";
    out += "  node [shape=box, fontname=\"monospace\"];\n";
    for (const KernelSpec& k : sc.kernels) {
        out += "  " + q(k.name) + " [label=" +
               q(k.name + "\\ns" + std::to_string(k.stream)) + "];\n";
    }
    for (const DagEdge& e : dag.edges) {
        std::string label = e.kind;
        if (!e.tensor.empty())
            label += " " + e.tensor;
        if (!e.event.empty())
            label += "\\n" + e.event;
        std::string style =
            e.event.empty() ? "dashed" : "solid";  // implied vs event-carried
        out += "  " + q(e.from) + " -> " + q(e.to) + " [label=" + q(label) +
               ", style=" + style + "];\n";
    }
    for (const auto& [from, to] : dag.false_serialization) {
        out += "  " + q(from) + " -> " + q(to) +
               " [label=\"false serialization\", style=dotted, "
               "color=red, constraint=false];\n";
    }
    out += "}\n";
    return out;
}

}  // namespace driver
}  // namespace tcsim
