#pragma once
/**
 * @file
 * Minimal dependency-free JSON: a variant value type, a strict
 * recursive-descent parser with line/column error reporting, and a
 * writer with full string escaping.
 *
 * This is the wire format of the scenario driver (scenario files),
 * the simrunner batch report, and the BENCH_<name>.json snapshots —
 * one parser for all three keeps the formats round-trippable without
 * an external dependency.
 *
 * Scope: the JSON grammar of RFC 8259 minus surrogate-pair decoding
 * (escaped surrogates are preserved as replacement text).  Object keys
 * keep insertion order so emitted reports diff cleanly.
 */

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tcsim {
namespace driver {

/** Thrown on malformed JSON or schema violations. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    /** Object member list; insertion order preserved. */
    using Members = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;
    JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
    JsonValue(double d) : type_(Type::kNumber), num_(d) {}
    JsonValue(int i) : type_(Type::kNumber), num_(i) {}
    JsonValue(int64_t i)
        : type_(Type::kNumber), num_(static_cast<double>(i))
    {
    }
    JsonValue(uint64_t i)
        : type_(Type::kNumber), num_(static_cast<double>(i))
    {
    }
    JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {}
    JsonValue(const char* s) : type_(Type::kString), str_(s) {}

    static JsonValue array() { return JsonValue(Type::kArray); }
    static JsonValue object() { return JsonValue(Type::kObject); }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /** Typed accessors; throw JsonError on type mismatch. */
    bool as_bool() const;
    double as_number() const;
    /** as_number() checked to be integral and in-range. */
    int64_t as_int() const;
    const std::string& as_string() const;
    const std::vector<JsonValue>& as_array() const;
    const Members& as_object() const;

    /** Object lookup; nullptr when absent (or not an object). */
    const JsonValue* find(const std::string& key) const;

    /**
     * Source position of this value in the parsed document (1-based;
     * 0:0 for values built programmatically).  Set by json_parse so
     * schema layers above the parser — which reject *valid* JSON for
     * semantic reasons — can still point at the offending line.
     */
    int line() const { return line_; }
    int col() const { return col_; }
    void set_pos(int line, int col)
    {
        line_ = line;
        col_ = col;
    }

    /** "line:col: " prefix for diagnostics ("" when unpositioned). */
    std::string pos_prefix() const
    {
        if (line_ == 0)
            return "";
        return std::to_string(line_) + ":" + std::to_string(col_) + ": ";
    }

    /** Builder helpers. */
    void push_back(JsonValue v);
    void set(const std::string& key, JsonValue v);

    /** Serialize.  @p indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

  private:
    explicit JsonValue(Type t) : type_(t) {}
    void dump_to(std::string* out, int indent, int depth) const;

    Type type_ = Type::kNull;
    int line_ = 0, col_ = 0;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    Members obj_;
};

/** Parse a complete JSON document; throws JsonError with line:col. */
JsonValue json_parse(const std::string& text);

/** Parse the file at @p path; throws JsonError (includes the path). */
JsonValue json_parse_file(const std::string& path);

/**
 * Atomically write @p v to @p path (temp file + rename, trailing
 * newline): a partial failure never clobbers an existing document.
 * Returns false and removes the temp file on failure.
 */
bool json_write_file_atomic(const JsonValue& v, const std::string& path,
                            int indent = 0);

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string json_escape(const std::string& s);

}  // namespace driver
}  // namespace tcsim
