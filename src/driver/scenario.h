#pragma once
/**
 * @file
 * Declarative simulation scenarios: a small JSON format that names a
 * GPU preset plus config overrides, a scheduler policy, a list of
 * kernel launches (family, GEMM shape, precision, layouts, stream),
 * and expected-metric assertions.  Every workload the paper sweeps by
 * recompiling a bench binary becomes a data file under scenarios/.
 *
 * Schema (all keys optional unless noted; unknown keys are errors):
 *
 *   {
 *     "name": "fig14a_gemm128",            // required
 *     "description": "...",
 *     "gpu": {"preset": "titan_v",          // or "rtx2080"
 *             "num_sms": 8, "clock_ghz": 1.53, ...},  // field overrides
 *     "sim": {"scheduler": "gto" | "lrr" | "two_level",
 *             "max_cycles": 100000000,
 *             "sim_threads": 1,      // intra-sim worker threads
 *                                    // (0 = hardware concurrency);
 *                                    // results are thread-invariant
 *             "idle_skip": true,     // false = lockstep main loop
 *             "min_sms": 0,          // floor on the SM-array size
 *             "detailed_sms": 0,     // sampled-SM fast-forward (see
 *                                    // SimOptions::detailed_sms)
 *             "sample_window": 4096,
 *             "replay": "off" | "record" | "replay" | "verify",
 *                                    // kernel-timing replay cache (see
 *                                    // SimOptions::replay_mode)
 *             "replay_verify_every": 8,   // verify 1-in-N replays
 *             "replay_verify_bound": 0.05},  // max rel cycle error
 *     "tensors": [                          // declarative form only
 *       {"name": "A0", "bytes": 32768},     // bump-placed, 256-aligned
 *       {"name": "A0_lo", "alias_of": "A0", // declared view (overlap
 *        "offset": 0, "bytes": 16384},      //   feeds hazard analysis)
 *       {"name": "X", "address": 0,         // absolute placement; any
 *        "bytes": 4096}],                   //   undeclared overlap is
 *                                           //   rejected at parse time
 *     "kernels": [                          // required, non-empty
 *       {"kernel": "wmma_shared",           // required; see registry
 *        "name": "gemm0", "stream": 0,
 *        "m": 128, "n": 128, "k": 128,
 *        "mode": "mixed" | "fp16" | "int8" | "int4",
 *        "a_layout": "row" | "col", "b_layout": ..., "cd_layout": ...,
 *        "functional": false,
 *        "warps_per_cta": 8,                // wmma_naive only
 *        "ctas": 8, "wmma_per_warp": 64,    // hmma_stress only
 *        "accumulators": 4,
 *        "reads": ["A0"], "writes": ["A1"], // declarative form: the
 *                                           //   task-graph compiler
 *                                           //   derives streams/events
 *        "wait_event": "e0" | ["e0","e1"],  // gate on recorded events
 *        "record_event": "e2",              // record after this launch
 *        "sync": true}],                    // join all prior launches
 *     "verify_tolerance": 0.05,             // max rel err, functional runs
 *     "expect": [
 *       {"metric": "total.cycles", "max": 60000, "min": 1000},
 *       {"metric": "kernel.gemm0.tflops", "min": 4.0},
 *       {"metric": "verify.max_rel_err", "max": 0.01}],
 *     "sweep": {                            // optional: parameter sweep
 *       "fork_cycle": 2000,                 // snapshot the shared prefix
 *                                           // here (>= 1, before any
 *                                           // prefix stream drains)
 *       "points": [                         // >= 1 sweep points
 *         {"name": "gemm64",                // required, unique
 *          "kernels": [...],                // appended after the prefix
 *          "expect": [...]}]},              // point-specific assertions
 *     "model": {                            // model form: a layer graph
 *       "batch": 4,                         //   lowered (src/model) to
 *       "tokens_per_request": 64,           //   tensors+kernels and fed
 *       "input_features": 256,              //   through the task-graph
 *       "precision": "mixed" | "fp16",      //   compiler; replaces
 *       "layers": [                         //   "kernels"/"tensors"
 *         {"type": "linear", "name": "fc1",
 *          "in_features": 256, "out_features": 256},
 *         {"type": "elementwise"},          // shape from activation
 *         {"type": "attention", "embed_dim": 256, "heads": 4},
 *         {"type": "conv2d", "in_channels": 3, "out_channels": 64,
 *          "kernel": 3, "stride": 1, "height": 32, "width": 32}]},
 *     "serving": {                          // serving-simulator form
 *       "model": { ...model object, no "batch"... },
 *       "trace": {"kind": "poisson", "seed": 42, "requests": 40,
 *                 "mean_interarrival_us": 2.0}
 *              | {"kind": "file",           // JSONL, one arrival per
 *                 "path": "traces/a.jsonl"},//   line (see --trace-out)
 *       "batching": {"policy": "static", "batch": 4,
 *                    "timeout_us": 10.0}
 *                 | {"policy": "continuous", "max_batch": 8,
 *                    "max_in_flight": 2},
 *       "percentiles": [99.5],              // extra latency percentiles
 *       "resilience": {                     // all optional, default off
 *         "deadline_us": 50.0,              // per-request deadline
 *         "batch_timeout_us": 100.0,        // kill a batch after this
 *         "max_retries": 2,                 // re-queues before drop
 *         "retry_backoff_us": 5.0,          // linear backoff per retry
 *         "shed_queue_depth": 8}},          // load-shed past this depth
 *     "faults": {                           // deterministic injection
 *       "seed": 7,                          //   (see sim/fault)
 *       "disabled_sms": [0, 3],             // never dispatched to
 *       "random_disabled_sms": 1,           // + seeded random picks
 *       "degraded_sms": [                   // reduced warp-slot caps
 *         {"sm": 1, "warp_slots": 16}],
 *       "random_degraded_sms": 2,           // + seeded random picks...
 *       "degraded_warp_slots": 16,          //   ...capped to this
 *       "slowdowns": [                      // kernel-name substring
 *         {"match": "fc1", "factor": 2.0,   //   rules, in promotion
 *          "count": 1}],                    //   order; count 0 = all
 *       "hangs": [{"match": "b0.", "count": 1}],  // never retires
 *       "ecc": {"prob": 0.001,              // per-sector retry odds on
 *               "extra_cycles": 200}}       //   the L2/DRAM path
 *   }
 *
 * A sweep scenario runs its top-level "kernels" as a *shared prefix*:
 * the runner simulates the prefix once, snapshots the complete
 * simulation state at fork_cycle, and forks one run per point (each a
 * restore + the point's kernels), bit-identical to running
 * prefix+point cold from cycle 0.  Sweep constraints (validated at
 * parse time): every kernel must be timing-only (functional=false),
 * point kernels may only use stream ids the prefix uses (or 0), point
 * kernel names must not collide with prefix names, and a point's
 * wait_event must be recorded by the prefix or the same point.  The
 * per-point "expect" list is evaluated against the merged run
 * (prefix + point kernels) in addition to the top-level "expect".
 *
 * Metric paths: total.{cycles,instructions,hmma_instructions,ipc,
 * tflops,ticks,skipped_cycles,stall_cycles},
 * total.stall.<reason> (per-reason issue-stall cycles, e.g.
 * total.stall.mshr_full / noc_busy / dram_queue),
 * kernel.<name>.{cycles,instructions,hmma_instructions,ipc,tflops,
 * start_cycle,finish_cycle,stream,stall_cycles},
 * kernel.<name>.stall.<reason>,
 * mem.{l1_hits,l1_misses,l2_hits,l2_misses,dram_bytes,global_sectors,
 * mshr_merges,mshr_peak,noc_queue_cycles,l2_queue_cycles,
 * dram_queue_cycles,dram_turnarounds} (run-wide memory-hierarchy
 * counters from the transaction path),
 * event.<name>.cycle (completion stamp of a recorded event),
 * verify.max_rel_err (functional kernels only), and — serving
 * scenarios only — serve.{requests,completed,batches,mean_batch_size,
 * latency_p50,latency_p95,latency_p99,latency_p999,latency_p<pct>
 * (any percentile listed in serving.percentiles, dots spelled as in
 * the list, e.g. latency_p99.5),latency_mean,latency_max,
 * queue_wait_p50,queue_wait_p99,queue_wait_max,queue_wait_mean,
 * queue_depth_peak,queue_depth_mean,busy_frac,makespan_cycles}
 * (latencies and waits in cycles; see src/serve/latency_stats.h).
 * Serving scenarios with a "resilience" object additionally get
 * serve.{deadline_miss,goodput,retries,shed,dropped,killed_batches},
 * and scenarios with a "faults" object get
 * fault.{disabled_sms,degraded_sms,slowdowns,slowdown_extra_cycles,
 * hangs,ecc_retries,ecc_extra_cycles} (see sim/fault/fault_plan.h).
 * "faults" composes with the kernel, declarative, model and serving
 * forms, but is rejected alongside "sweep", sim.replay and
 * sim.detailed_sms (those paths assume a healthy chip).
 *
 * The "gpu" object also accepts the memory-hierarchy knobs
 * l1_mshr_entries, l2_banks, l2_bank_bytes_per_cycle,
 * l2_bank_queue_depth, noc_bytes_per_cycle, noc_queue_depth,
 * dram_queue_depth and dram_rw_turnaround (see GpuConfig).
 *
 * Declarative form: a scenario with a "tensors" arena (or any kernel
 * declaring "reads"/"writes") switches to the task-graph frontend
 * (driver/taskgraph.h): every kernel must declare its read/write
 * sets, "stream" and "sync" are rejected (the compiler assigns
 * streams), and record_event/wait_event become an event-naming /
 * audit annotation.  The compiled plan is lowered back onto the
 * legacy KernelSpec fields, so downstream (runner, engine, reports)
 * is unchanged.  Hand-written record/wait/sync plumbing without
 * read/write sets still parses, with a deprecation warning.
 */

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "arch/gpu_config.h"
#include "driver/json.h"
#include "driver/taskgraph.h"
#include "model/model_graph.h"
#include "serve/request_trace.h"
#include "sim/engine.h"
#include "sim/fault/fault_plan.h"
#include "tensor/types.h"

namespace tcsim {
namespace driver {

/** Thrown on schema violations (unknown keys, bad values). */
class ScenarioError : public std::runtime_error
{
  public:
    explicit ScenarioError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** One kernel launch of a scenario. */
struct KernelSpec
{
    std::string family;  ///< Registry name ("wmma_shared", ...).
    std::string name;    ///< Display name; defaults to family_<index>.
    int stream = 0;      ///< 0 = the implicit default stream.

    // GEMM families.
    int m = 64, n = 64, k = 64;
    TcMode mode = TcMode::kMixed;
    Layout a_layout = Layout::kRowMajor;
    Layout b_layout = Layout::kRowMajor;
    Layout cd_layout = Layout::kRowMajor;
    bool functional = false;
    int warps_per_cta = 8;  ///< wmma_naive only.

    // hmma_stress.
    int ctas = 8;
    int wmma_per_warp = 64;
    int accumulators = 4;

    // Synchronization (any family).
    /** Events this launch's stream waits on before it may start. */
    std::vector<std::string> wait_events;
    /** Event recorded on the stream right after this launch. */
    std::string record_event;
    /** Join barrier: wait for every launch declared before this one
     *  (across all streams) before starting. */
    bool sync = false;

    // Declarative form (driver/taskgraph.h).  After parsing, the
    // compiled plan overwrites stream/record_event/wait_events above.
    /** Tensor names this kernel reads / writes. */
    std::vector<std::string> reads, writes;
    /** Source position of the kernel object (diagnostics). */
    int line = 0, col = 0;
};

/** One expected-metric assertion. */
struct Expectation
{
    std::string metric;
    bool has_min = false, has_max = false, has_equals = false;
    double min = 0.0, max = 0.0, equals = 0.0;
};

/** One point of a parameter sweep: kernels appended after the shared
 *  prefix, plus point-specific assertions. */
struct SweepPoint
{
    std::string name;
    std::vector<KernelSpec> kernels;
    std::vector<Expectation> expect;
};

/** A parameter sweep over a shared simulated prefix. */
struct SweepSpec
{
    /** Cycle the prefix is snapshotted at (>= 1). */
    uint64_t fork_cycle = 0;
    std::vector<SweepPoint> points;
};

/** The "serving" scenario form: a request trace served against a
 *  declarative model under a batching policy (src/serve).  Wall-clock
 *  times are kept in microseconds here and converted to cycles with
 *  the resolved GpuConfig::clock_ghz at run time. */
struct ServingSpec
{
    bool enabled = false;
    model::ModelGraph model;

    // Trace source.
    std::string trace_kind = "poisson";  ///< "poisson" | "file".
    uint64_t seed = 1;
    int requests = 0;
    double mean_interarrival_us = 0;
    /** Materialized arrivals for "file" traces. */
    std::vector<serve::Request> file_trace;

    // Batching policy.
    std::string policy = "static";  ///< "static" | "continuous".
    int batch = 1;                  ///< static: target batch size.
    double timeout_us = 0;          ///< static: partial-batch flush.
    int max_batch = 8;              ///< continuous: join cap.
    int max_in_flight = 2;          ///< continuous: concurrent batches.

    /** Extra end-to-end latency percentiles to report beyond the fixed
     *  p50/95/99/99.9 set, in percent (e.g. [99.5]). */
    std::vector<double> percentiles;

    // Resilience ("resilience" object; all default off).  Microsecond
    // knobs convert to cycles at run time like the other wall-clock
    // fields.
    bool resilience = false;
    double deadline_us = 0;
    double batch_timeout_us = 0;
    int max_retries = 0;
    double retry_backoff_us = 0;
    int shed_queue_depth = 0;
};

/** A parsed scenario. */
struct Scenario
{
    std::string name;
    std::string description;
    std::string file;  ///< Source path when loaded from disk.

    std::string gpu_preset = "titan_v";
    /** GpuConfig field overrides, in declaration order. */
    std::vector<std::pair<std::string, double>> gpu_overrides;

    SimOptions sim;
    std::vector<KernelSpec> kernels;
    /** Declarative form: the tensor arena ("tensors"). */
    std::vector<TensorSpec> tensors;
    /** True when the task-graph compiler derived streams/events. */
    bool declarative = false;
    /** The dependency DAG (compiled plan, or empty for legacy —
     *  build_dag() synthesizes the legacy view on demand). */
    TaskGraphDag dag;
    std::vector<Expectation> expect;
    /** Max allowed |D - ref| / (1 + |ref|) for functional kernels. */
    double verify_tolerance = 0.05;

    /** Parameter sweep (empty points = a plain scenario). */
    SweepSpec sweep;
    bool is_sweep() const { return !sweep.points.empty(); }

    /** Serving form ("serving" key): no kernel list, the serving
     *  engine lowers and launches model batches itself. */
    ServingSpec serving;
    bool is_serving() const { return serving.enabled; }

    /** Deterministic fault injection ("faults" key; default: healthy
     *  chip). */
    FaultSpec faults;
    bool has_faults() const { return faults.enabled; }

    /** Preset with overrides applied. */
    GpuConfig gpu_config() const;
};

/** Names of the GpuConfig fields overridable from the "gpu" object. */
const std::vector<std::string>& gpu_override_keys();

/** Apply one override to @p cfg; throws ScenarioError when unknown. */
void apply_gpu_override(GpuConfig* cfg, const std::string& key,
                        double value);

/** Microseconds -> simulated cycles at @p clock_ghz, rounded to
 *  nearest.  The one conversion used for traces, timeouts and serving
 *  reports, so scenarios written in wall-clock terms stay consistent. */
uint64_t us_to_cycles(double us, double clock_ghz);

/** Parse a scenario document; @p file is used in error messages. */
Scenario parse_scenario(const JsonValue& doc, const std::string& file = "");

/** Parse from JSON text. */
Scenario parse_scenario_text(const std::string& text,
                             const std::string& file = "");

/** Load and parse scenarios/<name>.json. */
Scenario load_scenario_file(const std::string& path);

/**
 * Attach a standalone sweep/grid document ({"fork_cycle": ...,
 * "points": [...]}) to @p sc and validate the combination (the
 * simrunner --sweep/--grid form).  Throws ScenarioError when @p sc
 * already declares a sweep or any sweep constraint fails.
 */
void attach_sweep(Scenario* sc, const JsonValue& doc,
                  const std::string& file = "");

/**
 * Expand sweep point @p index into a standalone scenario: the shared
 * prefix kernels followed by the point's kernels, the merged expect
 * list, and the joined name "<scenario>/<point>".  Running the result
 * cold (with the same SimOptions::min_sms floor the sweep runner
 * pins) is the reference a forked run must match bit-identically.
 */
Scenario materialize_sweep_point(const Scenario& sc, size_t index);

const char* tc_mode_key(TcMode mode);
const char* scheduler_key(SchedulerPolicy policy);

}  // namespace driver
}  // namespace tcsim
