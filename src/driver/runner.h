#pragma once
/**
 * @file
 * Scenario execution: ScenarioRunner instantiates one Gpu per
 * scenario (own memory system, executor cache, streams), runs every
 * declared launch through the stream-aware engine, verifies
 * functional kernels against the host reference, and evaluates the
 * scenario's expected-metric assertions.
 *
 * The batch runner executes N independent scenarios on a small thread
 * pool — one simulator instance per worker, no shared mutable state —
 * so scenario suites scale with host cores while every per-scenario
 * cycle count stays bit-identical to a serial run.
 */

#include <string>
#include <vector>

#include "driver/json.h"
#include "driver/scenario.h"
#include "serve/serving_engine.h"
#include "sim/engine.h"

namespace tcsim {
namespace driver {

/** Outcome of one expected-metric assertion. */
struct AssertionResult
{
    std::string metric;
    double value = 0.0;
    bool passed = false;
    std::string detail;  ///< Human-readable bound description.
};

/** Per-kernel outcome within a scenario. */
struct KernelResult
{
    std::string name;
    std::string family;
    int stream = 0;
    double flops = 0.0;
    double tflops = 0.0;
    /** Max |D - ref| / (1 + |ref|); negative when not verified. */
    double verify_rel_err = -1.0;
    LaunchStats stats;
};

/** Completion stamp of one named scenario event. */
struct EventResult
{
    std::string name;
    uint64_t cycle = 0;
};

/** Outcome of one scenario. */
struct ScenarioResult
{
    std::string name;
    std::string file;
    /** Ran to completion and every assertion passed. */
    bool passed = false;
    /** Never ran: an earlier failure stopped a --fail-fast batch. */
    bool skipped = false;
    /** Non-empty when the scenario failed to run at all. */
    std::string error;

    EngineStats totals;
    /** Core clock of the scenario's GPU config (for TFLOPS display). */
    double clock_ghz = 0.0;
    double total_flops = 0.0;
    double total_tflops = 0.0;
    /** Worst functional-verification error; negative = none ran. */
    double verify_max_rel_err = -1.0;
    std::vector<KernelResult> kernels;
    /** Named events the scenario recorded, with completion cycles. */
    std::vector<EventResult> events;
    std::vector<AssertionResult> assertions;
    double wall_ms = 0.0;
    /** Simulation throughput: engine ticks per wall-clock second
     *  (ticks, not simulated cycles — idle-skip jumps make cycles a
     *  poor rate denominator). */
    double ticks_per_sec = 0.0;
    /** Worker threads the simulation ran with (resolved, >= 1). */
    int sim_threads = 1;

    // Serving scenarios ("serving" key) only.
    /** True when `serving` below is populated. */
    bool has_serving = false;
    serve::ServingReport serving;

    // Fault-injected scenarios ("faults" key) only.
    /** True when the run injected faults (`fault_counters` is then
     *  meaningful and the report gains a "fault" block). */
    bool has_faults = false;
    FaultCounters fault_counters;

    /** Resolved SimOptions::ReplayMode the run used (0 = off); the
     *  hit/miss/verified counters live in `totals`. */
    int replay_mode = 0;

    // Sweep metadata (set by run_sweep; sweep_point empty otherwise).
    /** Name of the sweep point this result expands. */
    std::string sweep_point;
    /** Cycle the shared prefix was snapshotted at. */
    uint64_t sweep_fork_cycle = 0;
    /** Total points in the owning sweep. */
    int sweep_points = 0;
    /** Ran as a snapshot fork (false = cold rerun of prefix+point). */
    bool sweep_forked = false;
};

/** Replay-cache overrides from the command line (--replay /
 *  --replay-cache).  `mode` replaces the scenario's sim.replay when
 *  >= 0 (values are SimOptions::ReplayMode casts); `cache` is a
 *  batch-shared profile store borrowed by every run that has replay
 *  enabled (nullptr = each engine owns a private cache). */
struct ReplayOverride
{
    int mode = -1;
    ReplayCache* cache = nullptr;
};

/** Run one scenario to completion; never throws (errors land in
 *  ScenarioResult::error).  @p sim_threads_override replaces the
 *  scenario's sim.sim_threads when >= 0 (the simrunner --sim-threads
 *  flag and the CI serial-vs-threaded identity legs);
 *  @p detailed_sms_override likewise replaces sim.detailed_sms (the
 *  --detailed-sms flag and the CI sampled-error leg);
 *  @p wall_budget_ms > 0 arms the engine wall-clock watchdog (the
 *  --timeout-ms flag): a scenario stuck past the budget dies with a
 *  SimHangError diagnostic in its error row while the rest of the
 *  batch completes. */
ScenarioResult run_scenario(const Scenario& scenario,
                            int sim_threads_override = -1,
                            int detailed_sms_override = -1,
                            const ReplayOverride& replay = {},
                            uint64_t wall_budget_ms = 0);

/**
 * Run a sweep scenario: simulate the shared kernel prefix once to
 * sweep.fork_cycle, snapshot, and fork one run per point (restore +
 * the point's kernels), with up to @p jobs points in flight at once.
 * Every result is bit-identical to running the materialized point
 * cold — which @p cold_sweep does instead (the CI fork-identity
 * reference leg).  Both paths pin the same SimOptions::min_sms floor,
 * sized from the largest point, so every run sees the same SM array.
 * Returns one result per point, in declaration order; a prefix
 * failure (or a fork_cycle the prefix never reaches) fails every
 * point.
 */
std::vector<ScenarioResult> run_sweep(const Scenario& scenario, int jobs = 1,
                                      int sim_threads_override = -1,
                                      int detailed_sms_override = -1,
                                      bool cold_sweep = false,
                                      const ReplayOverride& replay = {});

/** Aggregate outcome of a scenario batch. */
struct BatchReport
{
    std::vector<ScenarioResult> results;  ///< Input order preserved.
    int jobs = 1;
    double wall_ms = 0.0;

    int failed() const;
    /** Scenarios never started because --fail-fast stopped the batch. */
    int skipped() const;
};

/** Batch execution knobs. */
struct BatchOptions
{
    /** Requested batch worker threads (scenarios in flight at once). */
    int jobs = 1;
    /** Stop starting new scenarios after the first failure. */
    bool fail_fast = false;
    /** Override every scenario's sim.sim_threads (-1 = keep the
     *  per-scenario setting). */
    int sim_threads = -1;
    /** Total thread budget shared between batch workers and each
     *  simulation's intra-sim workers (0 = the larger of hardware
     *  concurrency and the explicit jobs request, so batches of
     *  serial simulations keep exactly the workers they asked for):
     *  jobs is clamped to budget / sim_threads so batch parallelism
     *  times intra-sim parallelism never oversubscribes the host. */
    int thread_budget = 0;
    /** Run sweep points cold (prefix+point from cycle 0) instead of
     *  forking the prefix snapshot — the fork-identity reference. */
    bool cold_sweep = false;
    /** Override every scenario's sim.detailed_sms (-1 = keep the
     *  per-scenario setting). */
    int detailed_sms = -1;
    /** Replay-cache mode override + batch-shared profile store. */
    ReplayOverride replay;
    /** Per-scenario wall-clock watchdog in milliseconds (0 = none):
     *  a hung or runaway scenario is cut short with a structured
     *  error row instead of stalling the whole batch. */
    uint64_t timeout_ms = 0;
};

/** The batch worker count run_batch will actually use for @p opts
 *  over @p scenarios (the --jobs request after the thread-budget
 *  clamp). */
int effective_jobs(const BatchOptions& opts,
                   const std::vector<Scenario>& scenarios);

/**
 * Run @p scenarios on a batch worker pool.  Results keep input order;
 * per-scenario statistics are independent of jobs and of each
 * simulation's sim_threads.  With fail_fast, the first failure stops
 * the batch: scenarios not yet started are marked skipped
 * (already-running workers finish their current scenario).  A sweep
 * scenario expands to one result per point, flattened in place (so
 * BatchReport::results may be longer than @p scenarios).
 */
BatchReport run_batch(const std::vector<Scenario>& scenarios,
                      const BatchOptions& opts);

/** Legacy signature: jobs + fail_fast only. */
BatchReport run_batch(const std::vector<Scenario>& scenarios, int jobs,
                      bool fail_fast = false);

/** The batch report as JSON (schema "tcsim-batch-report-v1"). */
JsonValue report_to_json(const BatchReport& report);

/** Atomically write the JSON report (temp file + rename).
 *  Returns false (with a warning) when the path is not writable. */
bool write_report_file(const BatchReport& report, const std::string& path);

}  // namespace driver
}  // namespace tcsim
