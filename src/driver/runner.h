#pragma once
/**
 * @file
 * Scenario execution: ScenarioRunner instantiates one Gpu per
 * scenario (own memory system, executor cache, streams), runs every
 * declared launch through the stream-aware engine, verifies
 * functional kernels against the host reference, and evaluates the
 * scenario's expected-metric assertions.
 *
 * The batch runner executes N independent scenarios on a small thread
 * pool — one simulator instance per worker, no shared mutable state —
 * so scenario suites scale with host cores while every per-scenario
 * cycle count stays bit-identical to a serial run.
 */

#include <string>
#include <vector>

#include "driver/json.h"
#include "driver/scenario.h"
#include "sim/engine.h"

namespace tcsim {
namespace driver {

/** Outcome of one expected-metric assertion. */
struct AssertionResult
{
    std::string metric;
    double value = 0.0;
    bool passed = false;
    std::string detail;  ///< Human-readable bound description.
};

/** Per-kernel outcome within a scenario. */
struct KernelResult
{
    std::string name;
    std::string family;
    int stream = 0;
    double flops = 0.0;
    double tflops = 0.0;
    /** Max |D - ref| / (1 + |ref|); negative when not verified. */
    double verify_rel_err = -1.0;
    LaunchStats stats;
};

/** Completion stamp of one named scenario event. */
struct EventResult
{
    std::string name;
    uint64_t cycle = 0;
};

/** Outcome of one scenario. */
struct ScenarioResult
{
    std::string name;
    std::string file;
    /** Ran to completion and every assertion passed. */
    bool passed = false;
    /** Never ran: an earlier failure stopped a --fail-fast batch. */
    bool skipped = false;
    /** Non-empty when the scenario failed to run at all. */
    std::string error;

    EngineStats totals;
    /** Core clock of the scenario's GPU config (for TFLOPS display). */
    double clock_ghz = 0.0;
    double total_flops = 0.0;
    double total_tflops = 0.0;
    /** Worst functional-verification error; negative = none ran. */
    double verify_max_rel_err = -1.0;
    std::vector<KernelResult> kernels;
    /** Named events the scenario recorded, with completion cycles. */
    std::vector<EventResult> events;
    std::vector<AssertionResult> assertions;
    double wall_ms = 0.0;
};

/** Run one scenario to completion; never throws (errors land in
 *  ScenarioResult::error). */
ScenarioResult run_scenario(const Scenario& scenario);

/** Aggregate outcome of a scenario batch. */
struct BatchReport
{
    std::vector<ScenarioResult> results;  ///< Input order preserved.
    int jobs = 1;
    double wall_ms = 0.0;

    int failed() const;
    /** Scenarios never started because --fail-fast stopped the batch. */
    int skipped() const;
};

/**
 * Run @p scenarios on @p jobs worker threads (1 = serial, in the
 * calling thread).  Results keep input order; per-scenario statistics
 * are independent of @p jobs.  With @p fail_fast, the first failure
 * stops the batch: scenarios not yet started are marked skipped
 * (already-running workers finish their current scenario).
 */
BatchReport run_batch(const std::vector<Scenario>& scenarios, int jobs,
                      bool fail_fast = false);

/** The batch report as JSON (schema "tcsim-batch-report-v1"). */
JsonValue report_to_json(const BatchReport& report);

/** Atomically write the JSON report (temp file + rename).
 *  Returns false (with a warning) when the path is not writable. */
bool write_report_file(const BatchReport& report, const std::string& path);

}  // namespace driver
}  // namespace tcsim
