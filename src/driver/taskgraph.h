#pragma once
/**
 * @file
 * Scenario-level task-graph frontend: parses the declarative tensor
 * arena ("tensors" plus per-kernel "reads"/"writes"), feeds it to the
 * core compiler (sim/graph/task_graph.h), and lowers the compiled
 * plan back onto the legacy KernelSpec fields — stream, record_event,
 * wait_events — so ScenarioRunner and the engine run a declarative
 * scenario through the exact op sequence a hand-written one uses.
 *
 * Also home of the DAG dump (simrunner --dump-dag): a JSON document
 * that round-trips through the driver JSON parser plus a Graphviz DOT
 * rendering.  Legacy scenarios dump too — their DAG is synthesized
 * from the explicit record/wait/sync plumbing instead of compiled.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/json.h"

namespace tcsim {
namespace driver {

struct Scenario;

/** One entry of the scenario "tensors" arena. */
struct TensorSpec
{
    std::string name;
    uint64_t bytes = 0;
    std::string alias_of;  ///< View: name of the base tensor ("" = none).
    uint64_t offset = 0;   ///< View: byte offset into the base.
    bool placed = false;   ///< Explicit "address" given.
    /** Requested address when placed; the resolved arena address for
     *  every tensor once the scenario compiled. */
    uint64_t address = 0;
    int line = 0, col = 0;  ///< Source position for diagnostics.
};

/** One dependency edge of the dumped DAG. */
struct DagEdge
{
    std::string from, to;  ///< Kernel names.
    /** "raw" | "war" | "waw" (compiled) or "event" | "sync" (legacy). */
    std::string kind;
    std::string tensor;  ///< Hazard tensor ("" for legacy edges).
    bool cross_stream = false;
    /** Event carrying the edge; "" = implied by stream order or
     *  transitivity. */
    std::string event;
};

/** The dependency DAG of a scenario, dump-ready. */
struct TaskGraphDag
{
    /** True when this is a compiled declarative plan (false = DAG
     *  synthesized from legacy explicit plumbing). */
    bool compiled = false;
    int num_streams = 0;
    std::vector<DagEdge> edges;
    /** Declared edges the hazard analysis proved unnecessary. */
    std::vector<std::pair<std::string, std::string>> false_serialization;
    /** The tensor arena with resolved addresses (empty for legacy). */
    std::vector<TensorSpec> tensors;
};

/**
 * Compile the declarative form of @p sc: build the tensor arena,
 * derive hazards, reject multi-writer ambiguity and undeclared
 * aliasing (ScenarioError with source line:col), assign streams, and
 * write the derived stream/record_event/wait_events back into
 * sc->kernels.  Explicit record_event names are honoured (the task's
 * compiled event takes that name and is always recorded, so
 * event.<name>.cycle metrics keep working); explicit wait_event
 * entries are audit annotations — edges the hazard DAG does not back
 * are reported as false serialization (warn + sc->dag), never obeyed.
 * Fills sc->dag.  Called by parse_scenario; @p file for diagnostics.
 */
void compile_taskgraph(Scenario* sc, const std::string& file);

/** The dependency DAG of @p sc: the compiled plan when declarative,
 *  else a DAG synthesized from record/wait/sync plumbing. */
TaskGraphDag build_dag(const Scenario& sc);

/** Dump @p dag as a JSON document (parses back with json_parse). */
JsonValue dag_to_json(const Scenario& sc, const TaskGraphDag& dag);

/** Dump @p dag as a Graphviz digraph. */
std::string dag_to_dot(const Scenario& sc, const TaskGraphDag& dag);

}  // namespace driver
}  // namespace tcsim
