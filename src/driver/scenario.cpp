#include "driver/scenario.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>

#include "common/logging.h"
#include "kernels/kernel_registry.h"
#include "model/model_graph.h"

namespace tcsim {
namespace driver {

namespace {

[[noreturn]] void
fail(const std::string& file, const std::string& msg)
{
    throw ScenarioError(file.empty() ? msg : file + ": " + msg);
}

/** Reject keys outside @p allowed (schema strictness). */
void
check_keys(const JsonValue& obj, std::initializer_list<const char*> allowed,
           const std::string& where, const std::string& file)
{
    for (const auto& [key, value] : obj.as_object()) {
        bool known = false;
        for (const char* a : allowed)
            known |= key == a;
        if (!known)
            fail(file, "unknown key \"" + key + "\" in " + where);
    }
}

int
get_int(const JsonValue& obj, const char* key, int fallback,
        const std::string& file)
{
    const JsonValue* v = obj.find(key);
    if (!v)
        return fallback;
    int64_t i = v->as_int();
    if (i < -(1LL << 31) || i >= (1LL << 31))
        fail(file, std::string(key) + " out of range");
    return static_cast<int>(i);
}

std::string
get_string(const JsonValue& obj, const char* key, const std::string& fallback)
{
    const JsonValue* v = obj.find(key);
    return v ? v->as_string() : fallback;
}

Layout
parse_layout(const std::string& s, const std::string& file)
{
    if (s == "row")
        return Layout::kRowMajor;
    if (s == "col")
        return Layout::kColMajor;
    fail(file, "bad layout \"" + s + "\" (want \"row\" or \"col\")");
}

TcMode
parse_mode(const std::string& s, const std::string& file)
{
    if (s == "fp16")
        return TcMode::kFp16;
    if (s == "mixed")
        return TcMode::kMixed;
    if (s == "int8")
        return TcMode::kInt8;
    if (s == "int4")
        return TcMode::kInt4;
    fail(file, "bad mode \"" + s +
                   "\" (want fp16 | mixed | int8 | int4)");
}

SchedulerPolicy
parse_scheduler(const std::string& s, const std::string& file)
{
    if (s == "gto")
        return SchedulerPolicy::kGto;
    if (s == "lrr")
        return SchedulerPolicy::kLrr;
    if (s == "two_level")
        return SchedulerPolicy::kTwoLevel;
    fail(file, "bad scheduler \"" + s + "\" (want gto | lrr | two_level)");
}

KernelSpec
parse_kernel(const JsonValue& obj, size_t index, const std::string& file,
             bool declarative = false)
{
    std::string where = "kernels[" + std::to_string(index) + "]";

    KernelSpec spec;
    spec.line = obj.line();
    spec.col = obj.col();
    const JsonValue* family = obj.find("kernel");
    if (!family)
        fail(file, where + ": missing required key \"kernel\"");
    spec.family = family->as_string();
    const KernelFamilyInfo* info = find_kernel_family(spec.family);
    if (!info)
        fail(file, where + ": unknown kernel \"" + spec.family +
                       "\" (known: " + kernel_family_names() + ")");

    // Strict schema: only keys the selected family actually honours
    // are accepted, so an ignored "warps_per_cta" on wmma_shared (the
    // builder fixes 8 warps) is an error rather than a silent no-op.
    // The synchronization keys apply to every family.  Mode-dependent
    // keys: the declarative form derives streams and ordering, so
    // "stream"/"sync" are rejected there; "reads"/"writes" are only
    // meaningful there.
    where += " (" + spec.family + ")";
    if (declarative) {
        if (obj.find("stream") || obj.find("sync"))
            fail(file, where +
                           ": declarative scenarios derive stream "
                           "assignment and ordering from reads/writes; "
                           "remove \"stream\"/\"sync\"");
    } else if (obj.find("reads") || obj.find("writes")) {
        fail(file, where +
                       ": \"reads\"/\"writes\" belong to the declarative "
                       "form (a scenario with a \"tensors\" arena); sweep "
                       "points use the explicit stream/event form");
    }
    if (info->family == KernelFamily::kWmmaNaive) {
        check_keys(obj,
                   {"kernel", "name", "stream", "m", "n", "k", "mode",
                    "a_layout", "b_layout", "cd_layout", "functional",
                    "warps_per_cta", "wait_event", "record_event", "sync",
                    "reads", "writes"},
                   where, file);
    } else if (info->is_gemm) {
        check_keys(obj,
                   {"kernel", "name", "stream", "m", "n", "k", "mode",
                    "a_layout", "b_layout", "cd_layout", "functional",
                    "wait_event", "record_event", "sync", "reads",
                    "writes"},
                   where, file);
    } else {
        check_keys(obj,
                   {"kernel", "name", "stream", "mode", "ctas",
                    "warps_per_cta", "wmma_per_warp", "accumulators",
                    "wait_event", "record_event", "sync", "reads",
                    "writes"},
                   where, file);
    }

    auto parse_rw = [&](const char* key, std::vector<std::string>* out) {
        const JsonValue* v = obj.find(key);
        if (!v)
            return;
        if (!v->is_array())
            fail(file, where + ": \"" + key +
                           "\" must be an array of tensor names");
        for (const JsonValue& e : v->as_array()) {
            if (e.as_string().empty())
                fail(file,
                     where + ": " + key + " names must be non-empty");
            out->push_back(e.as_string());
        }
    };
    parse_rw("reads", &spec.reads);
    parse_rw("writes", &spec.writes);

    spec.name = get_string(obj, "name",
                           spec.family + "_" + std::to_string(index));
    spec.stream = get_int(obj, "stream", 0, file);
    if (spec.stream < 0 || spec.stream > 63)
        fail(file, where + ": stream must be in [0, 63]");

    spec.m = get_int(obj, "m", spec.m, file);
    spec.n = get_int(obj, "n", spec.n, file);
    spec.k = get_int(obj, "k", spec.k, file);
    spec.mode = parse_mode(get_string(obj, "mode", "mixed"), file);
    spec.a_layout = parse_layout(get_string(obj, "a_layout", "row"), file);
    spec.b_layout = parse_layout(get_string(obj, "b_layout", "row"), file);
    spec.cd_layout = parse_layout(get_string(obj, "cd_layout", "row"), file);
    if (const JsonValue* v = obj.find("functional"))
        spec.functional = v->as_bool();
    spec.warps_per_cta = get_int(obj, "warps_per_cta", 8, file);
    spec.ctas = get_int(obj, "ctas", 8, file);
    spec.wmma_per_warp = get_int(obj, "wmma_per_warp", 64, file);
    spec.accumulators = get_int(obj, "accumulators", 4, file);

    if (const JsonValue* v = obj.find("record_event")) {
        spec.record_event = v->as_string();
        if (spec.record_event.empty())
            fail(file, where + ": record_event must be a non-empty string");
    }
    if (const JsonValue* v = obj.find("wait_event")) {
        if (v->is_array()) {
            for (const JsonValue& e : v->as_array())
                spec.wait_events.push_back(e.as_string());
        } else {
            spec.wait_events.push_back(v->as_string());
        }
        for (const std::string& e : spec.wait_events)
            if (e.empty())
                fail(file, where + ": wait_event names must be non-empty");
    }
    if (const JsonValue* v = obj.find("sync"))
        spec.sync = v->as_bool();

    if (info->is_gemm) {
        if (spec.m <= 0 || spec.n <= 0 || spec.k <= 0)
            fail(file, where + ": m/n/k must be positive");
        // CTA tile divisibility the builders TCSIM_CHECK (fail at parse
        // time instead of aborting mid-batch).
        const bool naive = info->family == KernelFamily::kWmmaNaive;
        const int dm = naive ? 16 : 64, dn = naive ? 16 : 64, dk = 16;
        if (spec.m % dm || spec.n % dn || spec.k % dk)
            fail(file, where + ": " + spec.family +
                           " needs m % " + std::to_string(dm) + " == 0, n % " +
                           std::to_string(dn) + " == 0, k % " +
                           std::to_string(dk) + " == 0");
        if (spec.mode != TcMode::kFp16 && spec.mode != TcMode::kMixed)
            fail(file, where + ": GEMM kernels support fp16 | mixed only");
        if (naive && (spec.warps_per_cta < 1 || spec.warps_per_cta > 32))
            fail(file, where + ": warps_per_cta must be in [1, 32]");
        if (spec.functional && !info->supports_functional)
            fail(file, where + ": " + spec.family +
                           " is a timing-only baseline (functional must "
                           "be false)");
    } else {
        if (spec.ctas < 1 || spec.warps_per_cta < 1 ||
            spec.wmma_per_warp < 1)
            fail(file, where + ": ctas/warps_per_cta/wmma_per_warp must be "
                               "positive");
        if (spec.accumulators < 1 || spec.accumulators > 4 ||
            spec.wmma_per_warp % spec.accumulators)
            fail(file, where + ": accumulators must be in [1, 4] and divide "
                               "wmma_per_warp");
    }
    return spec;
}

Expectation
parse_expectation(const JsonValue& obj, size_t index,
                  const std::string& file)
{
    std::string where = "expect[" + std::to_string(index) + "]";
    check_keys(obj, {"metric", "min", "max", "equals"}, where, file);
    Expectation e;
    const JsonValue* metric = obj.find("metric");
    if (!metric)
        fail(file, where + ": missing required key \"metric\"");
    e.metric = metric->as_string();
    if (e.metric.rfind("total.", 0) != 0 &&
        e.metric.rfind("kernel.", 0) != 0 &&
        e.metric.rfind("event.", 0) != 0 &&
        e.metric.rfind("mem.", 0) != 0 &&
        e.metric.rfind("verify.", 0) != 0 &&
        e.metric.rfind("serve.", 0) != 0 &&
        e.metric.rfind("fault.", 0) != 0)
        fail(file, where + ": metric must start with \"total.\", "
                           "\"kernel.\", \"event.\", \"mem.\", "
                           "\"verify.\", \"serve.\" or \"fault.\"");
    if (const JsonValue* v = obj.find("min")) {
        e.has_min = true;
        e.min = v->as_number();
    }
    if (const JsonValue* v = obj.find("max")) {
        e.has_max = true;
        e.max = v->as_number();
    }
    if (const JsonValue* v = obj.find("equals")) {
        e.has_equals = true;
        e.equals = v->as_number();
    }
    if (!e.has_min && !e.has_max && !e.has_equals)
        fail(file, where + ": needs at least one of min/max/equals");
    if (e.has_equals && (e.has_min || e.has_max))
        fail(file, where + ": equals excludes min/max");
    return e;
}

/** Reference checks shared by the top-level and sweep-point "expect"
 *  lists: metric paths must name known kernels/events, and verify
 *  metrics need a functional kernel. */
void
validate_expectation(const Expectation& e, const std::set<std::string>& names,
                     const std::set<std::string>& functional_names,
                     const std::set<std::string>& recorded_events,
                     bool any_functional, const std::string& file)
{
    if (e.metric.rfind("kernel.", 0) == 0) {
        // kernel.<name>.<field> — the name must exist, and
        // verify_rel_err only exists on functional kernels (else the
        // -1 "not verified" sentinel would satisfy any max bound
        // vacuously).
        std::string rest = e.metric.substr(7);
        // "stall.<reason>" is the one two-component field.
        size_t dot = rest.find(".stall.");
        if (dot == std::string::npos)
            dot = rest.rfind('.');
        if (dot == std::string::npos || dot == 0)
            fail(file, "bad metric path \"" + e.metric + "\"");
        std::string kname = rest.substr(0, dot);
        if (!names.count(kname))
            fail(file, "metric \"" + e.metric +
                           "\" references an unknown kernel");
        if (rest.substr(dot + 1) == "verify_rel_err" &&
            !functional_names.count(kname))
            fail(file, "metric \"" + e.metric +
                           "\" needs a functional kernel");
    }
    if (e.metric.rfind("verify.", 0) == 0 && !any_functional)
        fail(file, "metric \"" + e.metric + "\" needs a functional kernel");
    if (e.metric.rfind("serve.", 0) == 0)
        fail(file, "metric \"" + e.metric +
                       "\" requires a \"serving\" scenario");
    if (e.metric.rfind("event.", 0) == 0) {
        // event.<name>.cycle — the event must be recorded.
        std::string rest = e.metric.substr(6);
        size_t dot = rest.rfind('.');
        if (dot == std::string::npos || dot == 0 ||
            rest.substr(dot + 1) != "cycle")
            fail(file, "bad metric path \"" + e.metric +
                           "\" (want event.<name>.cycle)");
        if (!recorded_events.count(rest.substr(0, dot)))
            fail(file, "metric \"" + e.metric +
                           "\" references an event no kernel records");
    }
}

/**
 * Parse {"fork_cycle": ..., "points": [...]} into sc->sweep and
 * validate every sweep constraint against the already-parsed prefix
 * (sc->kernels).  Shared by the inline "sweep" key and attach_sweep.
 */
void
parse_sweep_into(Scenario* sc, const JsonValue& obj, const std::string& file)
{
    if (!obj.is_object())
        fail(file, "\"sweep\" must be a JSON object");
    if (sc->declarative)
        fail(file, "sweep: declarative scenarios do not support sweeps "
                   "(points extend the explicit stream/event form)");
    check_keys(obj, {"fork_cycle", "points"}, "sweep", file);

    const JsonValue* fc = obj.find("fork_cycle");
    if (!fc)
        fail(file, "sweep: missing required key \"fork_cycle\"");
    int64_t cycle = fc->as_int();
    if (cycle < 1)
        fail(file, "sweep.fork_cycle must be >= 1 (snapshots capture a "
                   "run already in progress)");
    sc->sweep.fork_cycle = static_cast<uint64_t>(cycle);

    // The prefix constraints: sweeps are timing-only (functional
    // commits would have to be replayed per fork), and the prefix must
    // still be in flight at the fork — which the runner checks at run
    // time, since it depends on simulated timing.
    std::set<std::string> base_names, base_recorded;
    std::set<int> base_streams;
    for (const KernelSpec& k : sc->kernels) {
        if (k.functional)
            fail(file, "sweep: prefix kernel \"" + k.name +
                           "\" is functional; sweeps are timing-only "
                           "(forks share one copy-on-write memory image)");
        base_names.insert(k.name);
        base_streams.insert(k.stream);
        if (!k.record_event.empty())
            base_recorded.insert(k.record_event);
    }

    const JsonValue* points = obj.find("points");
    if (!points || !points->is_array() || points->as_array().empty())
        fail(file, "sweep needs a non-empty \"points\" array");
    std::set<std::string> point_names;
    for (size_t pi = 0; pi < points->as_array().size(); ++pi) {
        const JsonValue& pobj = points->as_array()[pi];
        std::string where = "sweep.points[" + std::to_string(pi) + "]";
        if (!pobj.is_object())
            fail(file, where + " must be a JSON object");
        check_keys(pobj, {"name", "kernels", "expect"}, where, file);

        SweepPoint pt;
        const JsonValue* pname = pobj.find("name");
        if (!pname || pname->as_string().empty())
            fail(file, where + ": missing required key \"name\"");
        pt.name = pname->as_string();
        if (!point_names.insert(pt.name).second)
            fail(file, where + ": duplicate point name \"" + pt.name + "\"");

        const JsonValue* pk = pobj.find("kernels");
        if (!pk || !pk->is_array() || pk->as_array().empty())
            fail(file, where + " needs a non-empty \"kernels\" array");
        std::set<std::string> names = base_names;
        std::set<std::string> recorded = base_recorded;
        for (size_t i = 0; i < pk->as_array().size(); ++i) {
            KernelSpec spec = parse_kernel(pk->as_array()[i], i, file);
            if (spec.functional)
                fail(file, where + ": kernel \"" + spec.name +
                               "\" is functional; sweeps are timing-only");
            // Streams are part of the forked snapshot: a point may
            // reuse prefix streams (or the implicit stream 0) but
            // cannot mint new ids, which would not exist in the
            // restored state.
            if (spec.stream != 0 && !base_streams.count(spec.stream))
                fail(file, where + ": kernel \"" + spec.name +
                               "\" uses stream " +
                               std::to_string(spec.stream) +
                               ", which the prefix never uses");
            if (!names.insert(spec.name).second)
                fail(file, where + ": kernel name \"" + spec.name +
                               "\" collides with the prefix or this point");
            if (!spec.record_event.empty())
                recorded.insert(spec.record_event);
            pt.kernels.push_back(std::move(spec));
        }
        for (const KernelSpec& k : pt.kernels)
            for (const std::string& e : k.wait_events)
                if (!recorded.count(e))
                    fail(file, where + ": kernel \"" + k.name +
                                   "\" waits on event \"" + e +
                                   "\" recorded by neither the prefix "
                                   "nor this point");

        if (const JsonValue* expect = pobj.find("expect")) {
            for (size_t i = 0; i < expect->as_array().size(); ++i) {
                Expectation e =
                    parse_expectation(expect->as_array()[i], i, file);
                validate_expectation(e, names, /*functional_names=*/{},
                                     recorded, /*any_functional=*/false,
                                     file);
                pt.expect.push_back(std::move(e));
            }
        }
        sc->sweep.points.push_back(std::move(pt));
    }
}

// --- Model-graph frontend ("model" / "serving.model" keys) -----------

model::LayerSpec
parse_model_layer(const JsonValue& obj, size_t index,
                  const std::string& where0, const std::string& file)
{
    std::string where = where0 + ".layers[" + std::to_string(index) + "]";
    if (!obj.is_object())
        fail(file, where + " must be a JSON object");
    const std::string type = get_string(obj, "type", "");
    model::LayerSpec l;
    l.name = get_string(obj, "name", "");
    if (type == "linear") {
        check_keys(obj,
                   {"type", "name", "in_features", "out_features",
                    "precision"},
                   where, file);
        l.kind = model::LayerKind::kLinear;
        l.in_features = get_int(obj, "in_features", 0, file);
        l.out_features = get_int(obj, "out_features", 0, file);
        if (l.out_features < 1)
            fail(file, where + ": linear needs out_features >= 1");
    } else if (type == "conv2d") {
        check_keys(obj,
                   {"type", "name", "in_channels", "out_channels", "kernel",
                    "stride", "height", "width", "precision"},
                   where, file);
        l.kind = model::LayerKind::kConv2d;
        l.in_channels = get_int(obj, "in_channels", 0, file);
        l.out_channels = get_int(obj, "out_channels", 0, file);
        l.kernel = get_int(obj, "kernel", 3, file);
        l.stride = get_int(obj, "stride", 1, file);
        l.height = get_int(obj, "height", 0, file);
        l.width = get_int(obj, "width", 0, file);
        if (l.out_channels < 1)
            fail(file, where + ": conv2d needs out_channels >= 1");
        if (l.kernel < 1 || l.stride < 1)
            fail(file, where + ": conv2d kernel/stride must be >= 1");
    } else if (type == "attention") {
        check_keys(obj, {"type", "name", "embed_dim", "heads", "precision"},
                   where, file);
        l.kind = model::LayerKind::kAttention;
        l.embed_dim = get_int(obj, "embed_dim", 0, file);
        l.heads = get_int(obj, "heads", 1, file);
        if (l.heads < 1)
            fail(file, where + ": attention needs heads >= 1");
    } else if (type == "elementwise") {
        check_keys(obj, {"type", "name", "precision"}, where, file);
        l.kind = model::LayerKind::kElementwise;
    } else {
        fail(file, where + ": unknown layer type \"" + type +
                       "\" (want linear | conv2d | attention | "
                       "elementwise)");
    }
    if (const JsonValue* p = obj.find("precision")) {
        l.has_precision = true;
        l.precision = parse_mode(p->as_string(), file);
    }
    return l;
}

/** Parse a "model" object.  @p batch_out is non-null for the
 *  standalone form, where "batch" sizes the single lowered forward
 *  pass; the serving form rejects it (the batcher decides). */
model::ModelGraph
parse_model_graph(const JsonValue& obj, const std::string& where,
                  const std::string& scenario_name, int* batch_out,
                  const std::string& file)
{
    if (!obj.is_object())
        fail(file, "\"" + where + "\" must be a JSON object");
    if (batch_out)
        check_keys(obj,
                   {"batch", "tokens_per_request", "input_features",
                    "precision", "layers"},
                   where, file);
    else
        check_keys(obj,
                   {"tokens_per_request", "input_features", "precision",
                    "layers"},
                   where, file);

    model::ModelGraph g;
    g.name = scenario_name;
    g.tokens_per_request = get_int(obj, "tokens_per_request", 64, file);
    if (g.tokens_per_request < 1)
        fail(file, where + ".tokens_per_request must be >= 1");
    g.input_features = get_int(obj, "input_features", 0, file);
    if (g.input_features < 0)
        fail(file, where + ".input_features must be >= 0");
    if (const JsonValue* p = obj.find("precision"))
        g.precision = parse_mode(p->as_string(), file);
    if (batch_out) {
        *batch_out = get_int(obj, "batch", 1, file);
        if (*batch_out < 1)
            fail(file, where + ".batch must be >= 1");
    }

    const JsonValue* layers = obj.find("layers");
    if (!layers || !layers->is_array() || layers->as_array().empty())
        fail(file, where + " needs a non-empty \"layers\" array");
    for (size_t i = 0; i < layers->as_array().size(); ++i)
        g.layers.push_back(
            parse_model_layer(layers->as_array()[i], i, where, file));
    return g;
}

/** Lower @p g into the scenario's tensors+kernels, exactly as if the
 *  scenario had written the declarative form by hand; the task-graph
 *  compiler takes it from there. */
void
lower_model_into(Scenario* sc, const model::ModelGraph& g, int batch,
                 const std::string& file)
{
    model::LoweredModel lm;
    try {
        lm = model::lower_model(g, batch);
    } catch (const model::ModelError& e) {
        fail(file, std::string("model: ") + e.what());
    }
    for (const model::LoweredTensor& t : lm.tensors) {
        TensorSpec ts;
        ts.name = t.name;
        ts.bytes = t.bytes;
        sc->tensors.push_back(std::move(ts));
    }
    for (const model::LoweredKernel& k : lm.kernels) {
        KernelSpec spec;
        spec.family = k.family;
        spec.name = k.name;
        spec.m = k.m;
        spec.n = k.n;
        spec.k = k.k;
        spec.mode = k.mode;
        spec.reads = k.reads;
        spec.writes = k.writes;
        sc->kernels.push_back(std::move(spec));
    }
    sc->declarative = true;
}

// --- Serving frontend ("serving" key) --------------------------------

std::vector<serve::Request>
parse_trace_file(const std::string& path, double clock_ghz,
                 const std::string& file)
{
    std::ifstream in(path);
    if (!in)
        fail(file, "serving.trace: cannot open \"" + path + "\"");
    std::vector<serve::Request> trace;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const std::string where =
            "serving.trace \"" + path + "\" line " + std::to_string(lineno);
        JsonValue v;
        try {
            v = json_parse(line);
        } catch (const JsonError& e) {
            fail(file, where + ": " + e.what());
        }
        if (!v.is_object())
            fail(file, where + ": each line must be a JSON object");
        // Extra keys (admit/finish/batch) are allowed so --trace-out
        // dumps replay directly as input traces.
        check_keys(v,
                   {"id", "arrival_cycle", "arrival_us", "admit_cycle",
                    "finish_cycle", "batch"},
                   where, file);
        serve::Request r;
        r.id = get_int(v, "id", static_cast<int>(trace.size()), file);
        if (const JsonValue* c = v.find("arrival_cycle")) {
            if (v.find("arrival_us"))
                fail(file, where + ": \"arrival_cycle\" and \"arrival_us\" "
                                   "are mutually exclusive");
            if (c->as_int() < 0)
                fail(file, where + ": arrival_cycle must be >= 0");
            r.arrival_cycle = static_cast<uint64_t>(c->as_int());
        } else if (const JsonValue* u = v.find("arrival_us")) {
            const double us = u->as_number();
            if (us < 0)
                fail(file, where + ": arrival_us must be >= 0");
            r.arrival_cycle = us_to_cycles(us, clock_ghz);
        } else {
            fail(file,
                 where + ": needs \"arrival_cycle\" or \"arrival_us\"");
        }
        trace.push_back(r);
    }
    std::stable_sort(trace.begin(), trace.end(),
                     [](const serve::Request& a, const serve::Request& b) {
                         return a.arrival_cycle < b.arrival_cycle;
                     });
    return trace;
}

ServingSpec
parse_serving_spec(const JsonValue& obj, const Scenario& sc,
                   const std::string& file)
{
    if (!obj.is_object())
        fail(file, "\"serving\" must be a JSON object");
    check_keys(obj, {"model", "trace", "batching", "percentiles",
                     "resilience"},
               "serving", file);

    ServingSpec spec;
    spec.enabled = true;

    const JsonValue* m = obj.find("model");
    if (!m)
        fail(file, "serving: missing required key \"model\"");
    spec.model = parse_model_graph(*m, "serving.model", sc.name,
                                   /*batch_out=*/nullptr, file);
    // Shape/chaining errors surface at parse time, not mid-serve.
    try {
        model::lower_model(spec.model, 1);
    } catch (const model::ModelError& e) {
        fail(file, std::string("serving.model: ") + e.what());
    }

    const JsonValue* trace = obj.find("trace");
    if (!trace || !trace->is_object())
        fail(file, "serving: missing required object \"trace\"");
    check_keys(*trace,
               {"kind", "seed", "requests", "mean_interarrival_us", "path"},
               "serving.trace", file);
    spec.trace_kind = get_string(*trace, "kind", "poisson");
    if (spec.trace_kind == "poisson") {
        if (trace->find("path"))
            fail(file, "serving.trace: \"path\" is for kind \"file\"");
        const JsonValue* req = trace->find("requests");
        if (!req)
            fail(file, "serving.trace: missing required key \"requests\"");
        spec.requests = get_int(*trace, "requests", 0, file);
        if (spec.requests < 0)
            fail(file, "serving.trace.requests must be >= 0");
        int64_t seed = 1;
        if (const JsonValue* s = trace->find("seed"))
            seed = s->as_int();
        if (seed < 0)
            fail(file, "serving.trace.seed must be >= 0");
        spec.seed = static_cast<uint64_t>(seed);
        if (const JsonValue* mi = trace->find("mean_interarrival_us")) {
            spec.mean_interarrival_us = mi->as_number();
            if (spec.mean_interarrival_us <= 0)
                fail(file,
                     "serving.trace.mean_interarrival_us must be positive");
        } else if (spec.requests > 0) {
            fail(file, "serving.trace: missing required key "
                       "\"mean_interarrival_us\"");
        }
    } else if (spec.trace_kind == "file") {
        for (const char* k : {"seed", "requests", "mean_interarrival_us"})
            if (trace->find(k))
                fail(file, std::string("serving.trace: \"") + k +
                               "\" is for kind \"poisson\"");
        std::string path = get_string(*trace, "path", "");
        if (path.empty())
            fail(file, "serving.trace: missing required key \"path\"");
        // Relative paths resolve against the scenario file's directory
        // so suites stay relocatable.
        if (!path.empty() && path[0] != '/' && !file.empty()) {
            const size_t slash = file.find_last_of('/');
            if (slash != std::string::npos)
                path = file.substr(0, slash + 1) + path;
        }
        spec.file_trace =
            parse_trace_file(path, sc.gpu_config().clock_ghz, file);
        spec.requests = static_cast<int>(spec.file_trace.size());
    } else {
        fail(file, "serving.trace.kind must be \"poisson\" or \"file\"");
    }

    const JsonValue* batching = obj.find("batching");
    if (!batching || !batching->is_object())
        fail(file, "serving: missing required object \"batching\"");
    check_keys(*batching,
               {"policy", "batch", "timeout_us", "max_batch",
                "max_in_flight"},
               "serving.batching", file);
    spec.policy = get_string(*batching, "policy", "static");
    if (spec.policy == "static") {
        for (const char* k : {"max_batch", "max_in_flight"})
            if (batching->find(k))
                fail(file, std::string("serving.batching: \"") + k +
                               "\" is for policy \"continuous\"");
        spec.batch = get_int(*batching, "batch", 1, file);
        if (spec.batch < 1)
            fail(file, "serving.batching.batch must be >= 1");
        if (const JsonValue* t = batching->find("timeout_us")) {
            spec.timeout_us = t->as_number();
            if (spec.timeout_us < 0)
                fail(file, "serving.batching.timeout_us must be >= 0");
        }
    } else if (spec.policy == "continuous") {
        for (const char* k : {"batch", "timeout_us"})
            if (batching->find(k))
                fail(file, std::string("serving.batching: \"") + k +
                               "\" is for policy \"static\"");
        spec.max_batch = get_int(*batching, "max_batch", 8, file);
        if (spec.max_batch < 1)
            fail(file, "serving.batching.max_batch must be >= 1");
        spec.max_in_flight = get_int(*batching, "max_in_flight", 2, file);
        if (spec.max_in_flight < 1)
            fail(file, "serving.batching.max_in_flight must be >= 1");
    } else {
        fail(file,
             "serving.batching.policy must be \"static\" or \"continuous\"");
    }

    if (const JsonValue* pcts = obj.find("percentiles")) {
        if (!pcts->is_array())
            fail(file, "serving.percentiles must be an array of numbers");
        for (const JsonValue& p : pcts->as_array()) {
            double pct = p.as_number();
            if (pct <= 0 || pct >= 100)
                fail(file, "serving.percentiles entries must be in (0, 100)");
            spec.percentiles.push_back(pct);
        }
    }

    if (const JsonValue* res = obj.find("resilience")) {
        if (!res->is_object())
            fail(file, "serving.resilience must be a JSON object");
        check_keys(*res,
                   {"deadline_us", "batch_timeout_us", "max_retries",
                    "retry_backoff_us", "shed_queue_depth"},
                   "serving.resilience", file);
        spec.resilience = true;
        if (const JsonValue* v = res->find("deadline_us")) {
            spec.deadline_us = v->as_number();
            if (spec.deadline_us <= 0)
                fail(file,
                     "serving.resilience.deadline_us must be positive");
        }
        if (const JsonValue* v = res->find("batch_timeout_us")) {
            spec.batch_timeout_us = v->as_number();
            if (spec.batch_timeout_us <= 0)
                fail(file,
                     "serving.resilience.batch_timeout_us must be positive");
        }
        spec.max_retries = get_int(*res, "max_retries", 0, file);
        if (spec.max_retries < 0)
            fail(file, "serving.resilience.max_retries must be >= 0");
        if (const JsonValue* v = res->find("retry_backoff_us")) {
            spec.retry_backoff_us = v->as_number();
            if (spec.retry_backoff_us < 0)
                fail(file,
                     "serving.resilience.retry_backoff_us must be >= 0");
        }
        spec.shed_queue_depth = get_int(*res, "shed_queue_depth", 0, file);
        if (spec.shed_queue_depth < 0)
            fail(file, "serving.resilience.shed_queue_depth must be >= 0");
        if (spec.max_retries > 0 && spec.batch_timeout_us <= 0)
            fail(file, "serving.resilience.max_retries needs "
                       "batch_timeout_us (retries happen when a timed-out "
                       "batch is killed)");
    }
    return spec;
}

/** One entry of "faults.slowdowns" / "faults.hangs". */
KernelFaultRule
parse_fault_rule(const JsonValue& obj, const std::string& where,
                 bool is_slowdown, const std::string& file)
{
    if (!obj.is_object())
        fail(file, where + " must be a JSON object");
    if (is_slowdown)
        check_keys(obj, {"match", "factor", "count"}, where, file);
    else
        check_keys(obj, {"match", "count"}, where, file);
    KernelFaultRule r;
    r.match = get_string(obj, "match", "");
    if (r.match.empty())
        fail(file, where + ": missing required key \"match\"");
    if (is_slowdown) {
        const JsonValue* f = obj.find("factor");
        if (!f)
            fail(file, where + ": missing required key \"factor\"");
        r.factor = f->as_number();
        if (r.factor <= 1.0)
            fail(file, where + ": factor must be > 1.0");
    }
    r.count = get_int(obj, "count", 0, file);
    if (r.count < 0)
        fail(file, where + ": count must be >= 0 (0 = every match)");
    return r;
}

/** The top-level "faults" object (see the schema comment). */
FaultSpec
parse_fault_spec(const JsonValue& obj, const std::string& file)
{
    if (!obj.is_object())
        fail(file, "\"faults\" must be a JSON object");
    check_keys(obj,
               {"seed", "disabled_sms", "random_disabled_sms",
                "degraded_sms", "random_degraded_sms",
                "degraded_warp_slots", "slowdowns", "hangs", "ecc"},
               "faults", file);
    FaultSpec spec;
    spec.enabled = true;
    if (const JsonValue* s = obj.find("seed")) {
        if (s->as_int() < 0)
            fail(file, "faults.seed must be >= 0");
        spec.seed = static_cast<uint64_t>(s->as_int());
    }
    if (const JsonValue* v = obj.find("disabled_sms")) {
        if (!v->is_array())
            fail(file, "faults.disabled_sms must be an array of SM ids");
        for (const JsonValue& e : v->as_array()) {
            if (e.as_int() < 0)
                fail(file, "faults.disabled_sms entries must be >= 0");
            spec.disabled_sms.push_back(static_cast<int>(e.as_int()));
        }
    }
    spec.random_disabled_sms = get_int(obj, "random_disabled_sms", 0, file);
    if (spec.random_disabled_sms < 0)
        fail(file, "faults.random_disabled_sms must be >= 0");
    if (const JsonValue* v = obj.find("degraded_sms")) {
        if (!v->is_array())
            fail(file, "faults.degraded_sms must be an array of objects");
        for (size_t i = 0; i < v->as_array().size(); ++i) {
            const JsonValue& d = v->as_array()[i];
            std::string where =
                "faults.degraded_sms[" + std::to_string(i) + "]";
            if (!d.is_object())
                fail(file, where + " must be a JSON object");
            check_keys(d, {"sm", "warp_slots"}, where, file);
            const int sm = get_int(d, "sm", -1, file);
            const int slots = get_int(d, "warp_slots", 0, file);
            if (sm < 0)
                fail(file, where + ": missing or negative \"sm\"");
            if (slots < 1)
                fail(file, where + ": warp_slots must be >= 1");
            spec.degraded_sms.emplace_back(sm, slots);
        }
    }
    spec.random_degraded_sms = get_int(obj, "random_degraded_sms", 0, file);
    if (spec.random_degraded_sms < 0)
        fail(file, "faults.random_degraded_sms must be >= 0");
    spec.degraded_warp_slots = get_int(obj, "degraded_warp_slots", 0, file);
    if (spec.degraded_warp_slots < 0)
        fail(file, "faults.degraded_warp_slots must be >= 0");
    if (spec.random_degraded_sms > 0 && spec.degraded_warp_slots < 1)
        fail(file, "faults.random_degraded_sms needs degraded_warp_slots "
                   ">= 1");
    if (const JsonValue* v = obj.find("slowdowns")) {
        if (!v->is_array())
            fail(file, "faults.slowdowns must be an array");
        for (size_t i = 0; i < v->as_array().size(); ++i)
            spec.slowdowns.push_back(parse_fault_rule(
                v->as_array()[i],
                "faults.slowdowns[" + std::to_string(i) + "]",
                /*is_slowdown=*/true, file));
    }
    if (const JsonValue* v = obj.find("hangs")) {
        if (!v->is_array())
            fail(file, "faults.hangs must be an array");
        for (size_t i = 0; i < v->as_array().size(); ++i)
            spec.hangs.push_back(parse_fault_rule(
                v->as_array()[i],
                "faults.hangs[" + std::to_string(i) + "]",
                /*is_slowdown=*/false, file));
    }
    if (const JsonValue* ecc = obj.find("ecc")) {
        if (!ecc->is_object())
            fail(file, "faults.ecc must be a JSON object");
        check_keys(*ecc, {"prob", "extra_cycles"}, "faults.ecc", file);
        const JsonValue* p = ecc->find("prob");
        if (!p)
            fail(file, "faults.ecc: missing required key \"prob\"");
        spec.ecc_prob = p->as_number();
        if (spec.ecc_prob < 0 || spec.ecc_prob >= 1)
            fail(file, "faults.ecc.prob must be in [0, 1)");
        const int extra = get_int(*ecc, "extra_cycles", 0, file);
        if (spec.ecc_prob > 0 && extra < 1)
            fail(file, "faults.ecc.extra_cycles must be >= 1 when prob "
                       "> 0");
        spec.ecc_extra_cycles = static_cast<uint64_t>(extra);
    }
    return spec;
}

}  // namespace

namespace {

/** One overridable GpuConfig field: the scenario key, whether it is
 *  genuinely fractional, the smallest accepted value, and the setter.
 *  The single declaration per field drives key listing, validation,
 *  and application. */
struct OverrideField
{
    const char* name;
    bool is_float;
    int min_value;
    void (*apply)(GpuConfig*, double);
};

#define TCSIM_INT_FIELD(key)                                                  \
    {#key, false, 1, [](GpuConfig* c, double v) {                             \
         c->key = static_cast<decltype(c->key)>(v);                           \
     }}
#define TCSIM_INT_FIELD_MIN0(key)                                             \
    {#key, false, 0, [](GpuConfig* c, double v) {                             \
         c->key = static_cast<decltype(c->key)>(v);                           \
     }}
#define TCSIM_FLOAT_FIELD(key)                                                \
    {#key, true, 1, [](GpuConfig* c, double v) { c->key = v; }}

constexpr OverrideField kOverrideFields[] = {
    TCSIM_INT_FIELD(num_sms),
    TCSIM_INT_FIELD(subcores_per_sm),
    TCSIM_INT_FIELD(tensor_cores_per_subcore),
    TCSIM_INT_FIELD(max_warps_per_sm),
    TCSIM_INT_FIELD(max_ctas_per_sm),
    TCSIM_INT_FIELD(registers_per_sm),
    TCSIM_INT_FIELD(shared_mem_per_sm),
    TCSIM_FLOAT_FIELD(clock_ghz),
    TCSIM_INT_FIELD(fp32_lanes),
    TCSIM_INT_FIELD(fedp_units_per_tc),
    TCSIM_INT_FIELD(hmma_issue_interval),
    TCSIM_INT_FIELD(max_tc_warps_per_sm),
    TCSIM_INT_FIELD(ldst_queue_depth),
    TCSIM_INT_FIELD(shared_mem_banks),
    TCSIM_INT_FIELD(shared_mem_latency),
    TCSIM_INT_FIELD(l1_size),
    TCSIM_INT_FIELD(l1_hit_latency),
    TCSIM_INT_FIELD(l2_size),
    TCSIM_INT_FIELD(l2_hit_latency),
    TCSIM_INT_FIELD(dram_latency),
    TCSIM_INT_FIELD(num_mem_partitions),
    TCSIM_FLOAT_FIELD(dram_bytes_per_cycle_per_partition),
    TCSIM_INT_FIELD(mio_bytes_per_cycle),
    TCSIM_INT_FIELD(l1_mshr_entries),
    TCSIM_INT_FIELD(l2_banks),
    TCSIM_FLOAT_FIELD(l2_bank_bytes_per_cycle),
    TCSIM_INT_FIELD(l2_bank_queue_depth),
    TCSIM_FLOAT_FIELD(noc_bytes_per_cycle),
    TCSIM_INT_FIELD(noc_queue_depth),
    TCSIM_INT_FIELD(dram_queue_depth),
    TCSIM_INT_FIELD_MIN0(dram_rw_turnaround),
};

#undef TCSIM_INT_FIELD
#undef TCSIM_INT_FIELD_MIN0
#undef TCSIM_FLOAT_FIELD

const OverrideField*
find_override_field(const std::string& key)
{
    for (const OverrideField& f : kOverrideFields)
        if (key == f.name)
            return &f;
    return nullptr;
}

}  // namespace

const std::vector<std::string>&
gpu_override_keys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> k;
        for (const OverrideField& f : kOverrideFields)
            k.push_back(f.name);
        return k;
    }();
    return keys;
}

void
apply_gpu_override(GpuConfig* cfg, const std::string& key, double value)
{
    const OverrideField* f = find_override_field(key);
    if (!f)
        throw ScenarioError("unknown gpu override \"" + key + "\"");
    f->apply(cfg, value);
}

uint64_t
us_to_cycles(double us, double clock_ghz)
{
    return static_cast<uint64_t>(std::llround(us * clock_ghz * 1000.0));
}

GpuConfig
Scenario::gpu_config() const
{
    GpuConfig cfg =
        gpu_preset == "rtx2080" ? rtx2080_config() : titan_v_config();
    for (const auto& [key, value] : gpu_overrides)
        apply_gpu_override(&cfg, key, value);
    return cfg;
}

Scenario
parse_scenario(const JsonValue& doc, const std::string& file)
{
    if (!doc.is_object())
        fail(file, "scenario document must be a JSON object");
    check_keys(doc,
               {"name", "description", "gpu", "sim", "tensors", "kernels",
                "verify_tolerance", "expect", "sweep", "model", "serving",
                "faults"},
               "scenario", file);

    Scenario sc;
    sc.file = file;
    const JsonValue* name = doc.find("name");
    if (!name || name->as_string().empty())
        fail(file, "missing required key \"name\"");
    sc.name = name->as_string();
    sc.description = get_string(doc, "description", "");

    if (const JsonValue* gpu = doc.find("gpu")) {
        for (const auto& [key, value] : gpu->as_object()) {
            if (key == "preset") {
                sc.gpu_preset = value.as_string();
                if (sc.gpu_preset != "titan_v" && sc.gpu_preset != "rtx2080")
                    fail(file, "bad gpu.preset \"" + sc.gpu_preset +
                                   "\" (want titan_v | rtx2080)");
            } else {
                const OverrideField* field = find_override_field(key);
                if (!field)
                    fail(file, "unknown key \"" + key + "\" in gpu");
                double v;
                if (field->is_float) {
                    v = value.as_number();
                    if (v <= 0)
                        fail(file, "gpu." + key + " must be positive");
                } else {
                    // Integer fields: reject fractional values before
                    // the setter truncates them (0.9 SMs must not
                    // silently become 0).
                    if (!value.is_number() ||
                        std::nearbyint(value.as_number()) !=
                            value.as_number())
                        fail(file, "gpu." + key + " must be an integer");
                    v = value.as_number();
                    if (v < field->min_value)
                        fail(file, "gpu." + key + " must be >= " +
                                       std::to_string(field->min_value));
                }
                sc.gpu_overrides.emplace_back(key, v);
            }
        }
    }

    if (const JsonValue* sim = doc.find("sim")) {
        check_keys(*sim,
                   {"scheduler", "max_cycles", "sim_threads", "idle_skip",
                    "min_sms", "detailed_sms", "sample_window", "replay",
                    "replay_verify_every", "replay_verify_bound"},
                   "sim", file);
        sc.sim.scheduler =
            parse_scheduler(get_string(*sim, "scheduler", "gto"), file);
        if (const JsonValue* v = sim->find("max_cycles")) {
            int64_t mc = v->as_int();
            if (mc <= 0)
                fail(file, "sim.max_cycles must be positive");
            sc.sim.max_cycles = static_cast<uint64_t>(mc);
        }
        if (const JsonValue* v = sim->find("sim_threads")) {
            int64_t t = v->as_int();
            if (t < 0)
                fail(file, "sim.sim_threads must be >= 0 (0 = one per "
                           "hardware thread)");
            sc.sim.sim_threads = static_cast<int>(t);
        }
        if (const JsonValue* v = sim->find("idle_skip"))
            sc.sim.idle_skip = v->as_bool();
        if (const JsonValue* v = sim->find("min_sms")) {
            int64_t s = v->as_int();
            if (s < 0)
                fail(file, "sim.min_sms must be >= 0");
            sc.sim.min_sms = static_cast<int>(s);
        }
        if (const JsonValue* v = sim->find("detailed_sms")) {
            int64_t s = v->as_int();
            if (s < 0)
                fail(file, "sim.detailed_sms must be >= 0 (0 = every SM "
                           "detailed)");
            sc.sim.detailed_sms = static_cast<int>(s);
        }
        if (const JsonValue* v = sim->find("sample_window")) {
            int64_t w = v->as_int();
            if (w < 1)
                fail(file, "sim.sample_window must be >= 1");
            sc.sim.sample_window = static_cast<uint64_t>(w);
        }
        if (const JsonValue* v = sim->find("replay")) {
            const std::string mode = v->as_string();
            if (mode == "off")
                sc.sim.replay_mode = SimOptions::ReplayMode::kOff;
            else if (mode == "record")
                sc.sim.replay_mode = SimOptions::ReplayMode::kRecord;
            else if (mode == "replay")
                sc.sim.replay_mode = SimOptions::ReplayMode::kReplay;
            else if (mode == "verify")
                sc.sim.replay_mode = SimOptions::ReplayMode::kVerify;
            else
                fail(file, "sim.replay must be \"off\", \"record\", "
                           "\"replay\" or \"verify\"");
            if (sc.sim.replay_mode != SimOptions::ReplayMode::kOff &&
                sc.sim.detailed_sms > 0)
                fail(file, "sim.replay and sim.detailed_sms are mutually "
                           "exclusive (sampled profiles would poison the "
                           "replay cache)");
        }
        if (const JsonValue* v = sim->find("replay_verify_every")) {
            int64_t n = v->as_int();
            if (n < 1)
                fail(file, "sim.replay_verify_every must be >= 1");
            sc.sim.replay_verify_every = static_cast<int>(n);
        }
        if (const JsonValue* v = sim->find("replay_verify_bound")) {
            double b = v->as_number();
            if (b < 0)
                fail(file, "sim.replay_verify_bound must be >= 0");
            sc.sim.replay_verify_bound = b;
        }
    }

    // Deterministic fault injection.  Parsed before the serving form
    // so faulty serving scenarios see it; mutually exclusive with the
    // paths that assume a healthy, homogeneous chip.
    if (const JsonValue* faults = doc.find("faults")) {
        if (doc.find("sweep"))
            fail(file, "\"faults\" and \"sweep\" are mutually exclusive "
                       "(forked sweep points assume a healthy prefix)");
        if (sc.sim.replay_mode != SimOptions::ReplayMode::kOff)
            fail(file, "\"faults\" and sim.replay are mutually exclusive "
                       "(fault timing would poison the replay cache)");
        if (sc.sim.detailed_sms > 0)
            fail(file, "\"faults\" and sim.detailed_sms are mutually "
                       "exclusive (sampled-SM scaling assumes homogeneous "
                       "SMs)");
        sc.faults = parse_fault_spec(*faults, file);
    }

    // Serving form: a standalone scenario type.  The serving engine
    // lowers and launches model batches itself, so there is no kernel
    // list to parse — validate the spec, restrict the expectations to
    // the metrics a serving run produces, and return.
    if (const JsonValue* serving = doc.find("serving")) {
        for (const char* k :
             {"kernels", "tensors", "model", "sweep", "verify_tolerance"})
            if (doc.find(k))
                fail(file, std::string("a \"serving\" scenario excludes \"") +
                               k + "\"");
        sc.serving = parse_serving_spec(*serving, sc, file);
        if (const JsonValue* expect = doc.find("expect")) {
            for (size_t i = 0; i < expect->as_array().size(); ++i) {
                Expectation e =
                    parse_expectation(expect->as_array()[i], i, file);
                if (e.metric.rfind("kernel.", 0) == 0 ||
                    e.metric.rfind("event.", 0) == 0 ||
                    e.metric.rfind("verify.", 0) == 0)
                    fail(file, "metric \"" + e.metric +
                                   "\": serving scenarios expose total.*, "
                                   "mem.*, serve.* and fault.* metrics");
                if (e.metric.rfind("fault.", 0) == 0 && !sc.has_faults())
                    fail(file, "metric \"" + e.metric +
                                   "\": needs a \"faults\" object");
                for (const char* m :
                     {"serve.deadline_miss", "serve.goodput",
                      "serve.retries", "serve.shed", "serve.dropped",
                      "serve.killed_batches"})
                    if (e.metric == m && !sc.serving.resilience)
                        fail(file, "metric \"" + e.metric +
                                       "\": needs a serving.resilience "
                                       "object");
                sc.expect.push_back(std::move(e));
            }
        }
        return sc;
    }

    // Model form: lower the layer graph into tensors+kernels here,
    // then fall through to the declarative (task-graph) path exactly
    // as if the scenario had spelled them out.
    const JsonValue* model_obj = doc.find("model");
    if (model_obj) {
        for (const char* k : {"kernels", "tensors"})
            if (doc.find(k))
                fail(file,
                     std::string("\"model\" replaces \"") + k + "\"");
        int batch = 1;
        model::ModelGraph g =
            parse_model_graph(*model_obj, "model", sc.name, &batch, file);
        lower_model_into(&sc, g, batch, file);
    }

    // Tensor arena (declarative form).  Parsed before the kernels so
    // read/write sets resolve against it.
    if (const JsonValue* tensors = doc.find("tensors")) {
        if (!tensors->is_array())
            fail(file, "\"tensors\" must be an array");
        std::set<std::string> tnames;
        for (size_t i = 0; i < tensors->as_array().size(); ++i) {
            const JsonValue& obj = tensors->as_array()[i];
            std::string where = "tensors[" + std::to_string(i) + "]";
            if (!obj.is_object())
                fail(file, where + " must be a JSON object");
            check_keys(obj, {"name", "bytes", "alias_of", "offset",
                             "address"},
                       where, file);
            TensorSpec t;
            t.line = obj.line();
            t.col = obj.col();
            const JsonValue* nm = obj.find("name");
            if (!nm || nm->as_string().empty())
                fail(file, where + ": missing required key \"name\"");
            t.name = nm->as_string();
            if (!tnames.insert(t.name).second)
                fail(file,
                     where + ": duplicate tensor name \"" + t.name + "\"");
            const JsonValue* b = obj.find("bytes");
            if (!b)
                fail(file, where + ": missing required key \"bytes\"");
            if (b->as_int() < 1)
                fail(file, where + ": bytes must be >= 1");
            t.bytes = static_cast<uint64_t>(b->as_int());
            t.alias_of = get_string(obj, "alias_of", "");
            if (const JsonValue* v = obj.find("offset")) {
                if (t.alias_of.empty())
                    fail(file, where + ": \"offset\" needs \"alias_of\"");
                if (v->as_int() < 0)
                    fail(file, where + ": offset must be >= 0");
                t.offset = static_cast<uint64_t>(v->as_int());
            }
            if (const JsonValue* v = obj.find("address")) {
                if (!t.alias_of.empty())
                    fail(file, where + ": \"address\" and \"alias_of\" are "
                                       "mutually exclusive");
                if (v->as_int() < 0)
                    fail(file, where + ": address must be >= 0");
                t.placed = true;
                t.address = static_cast<uint64_t>(v->as_int());
            }
            sc.tensors.push_back(std::move(t));
        }
    }

    const JsonValue* kernels = doc.find("kernels");
    if (!model_obj && (!kernels || kernels->as_array().empty()))
        fail(file,
             "scenario needs a non-empty \"kernels\" array (or a \"model\")");

    // Declarative form: a lowered model, a tensor arena, or any kernel
    // declaring its read/write sets.  Decided before parsing the
    // kernels — it flips which per-kernel keys are legal.
    sc.declarative |= doc.find("tensors") != nullptr;
    if (kernels)
        for (const JsonValue& k : kernels->as_array())
            if (k.is_object() && (k.find("reads") || k.find("writes")))
                sc.declarative = true;

    std::set<std::string> names;
    std::set<std::string> functional_names;
    std::set<std::string> recorded_events;
    bool any_functional = false;
    int legacy_plumbing = 0;
    const Arch arch = sc.gpu_preset == "rtx2080" ? Arch::kTuring : Arch::kVolta;
    if (kernels) {
        for (size_t i = 0; i < kernels->as_array().size(); ++i) {
            KernelSpec spec =
                parse_kernel(kernels->as_array()[i], i, file, sc.declarative);
            legacy_plumbing += (!spec.record_event.empty() ||
                                !spec.wait_events.empty() || spec.sync)
                                   ? 1
                                   : 0;
            if ((spec.mode == TcMode::kInt8 || spec.mode == TcMode::kInt4) &&
                arch != Arch::kTuring)
                fail(file, "kernels[" + std::to_string(i) +
                               "]: int8/int4 modes need the rtx2080 preset");
            if (spec.mode == TcMode::kInt4)
                fail(file, "kernels[" + std::to_string(i) +
                               "]: int4 needs the 8x8x32 tile, which no "
                               "registered kernel family emits yet");
            if (!names.insert(spec.name).second)
                fail(file, "duplicate kernel name \"" + spec.name + "\"");
            any_functional |= spec.functional;
            if (spec.functional)
                functional_names.insert(spec.name);
            if (!spec.record_event.empty())
                recorded_events.insert(spec.record_event);
            sc.kernels.push_back(std::move(spec));
        }
    } else {
        // Model form: sc.kernels was filled by lower_model_into.
        for (const KernelSpec& k : sc.kernels)
            names.insert(k.name);
    }
    if (sc.declarative) {
        // Compile read/write sets into streams and events; the plan
        // overwrites the per-kernel stream/record/wait fields, so
        // everything downstream of here sees a legacy-shaped scenario.
        compile_taskgraph(&sc, file);
        recorded_events.clear();
        for (const KernelSpec& k : sc.kernels)
            if (!k.record_event.empty())
                recorded_events.insert(k.record_event);
    } else if (legacy_plumbing > 0) {
        // One aggregated warning per scenario (not per kernel): batch
        // runs over the legacy suite stay readable.
        warn("%s: scenario \"%s\": %d of %zu kernel(s) hand-write "
             "record_event/wait_event/sync plumbing (deprecated): "
             "declare \"tensors\" plus per-kernel \"reads\"/\"writes\" "
             "and the task-graph compiler derives streams and events",
             file.empty() ? "scenario" : file.c_str(), sc.name.c_str(),
             legacy_plumbing, sc.kernels.size());
    }

    // Dependency sanity: a wait on an event no kernel records can
    // never be satisfied — fail those at parse time.  Deeper problems
    // (record/wait cycles, a record ordered behind its own wait) are
    // left to the engine, which reports them as an EngineDeadlockError
    // with the cycle-accurate wait graph.
    for (size_t i = 0; i < sc.kernels.size(); ++i)
        for (const std::string& e : sc.kernels[i].wait_events)
            if (!recorded_events.count(e))
                fail(file, "kernels[" + std::to_string(i) +
                               "]: waits on event \"" + e +
                               "\" which no kernel records");
    // A wait on an event recorded earlier on the *same* stream is a
    // no-op — stream FIFO order already guarantees it.  The compiler
    // never emits one (it only appears in hand-written plumbing).
    for (size_t i = 0; i < sc.kernels.size(); ++i)
        for (const std::string& e : sc.kernels[i].wait_events)
            for (size_t j = 0; j < i; ++j)
                if (sc.kernels[j].record_event == e &&
                    sc.kernels[j].stream == sc.kernels[i].stream)
                    warn("%s: kernels[%zu] (\"%s\") waits on \"%s\", "
                         "recorded earlier on the same stream %d — a "
                         "no-op wait (stream order already guarantees "
                         "it)",
                         file.empty() ? "scenario" : file.c_str(), i,
                         sc.kernels[i].name.c_str(), e.c_str(),
                         sc.kernels[i].stream);

    if (const JsonValue* v = doc.find("verify_tolerance")) {
        sc.verify_tolerance = v->as_number();
        if (sc.verify_tolerance <= 0)
            fail(file, "verify_tolerance must be positive");
    }

    if (const JsonValue* expect = doc.find("expect")) {
        for (size_t i = 0; i < expect->as_array().size(); ++i) {
            Expectation e =
                parse_expectation(expect->as_array()[i], i, file);
            validate_expectation(e, names, functional_names,
                                 recorded_events, any_functional, file);
            if (e.metric.rfind("fault.", 0) == 0 && !sc.has_faults())
                fail(file, "metric \"" + e.metric +
                               "\": needs a \"faults\" object");
            if (e.metric.rfind("serve.", 0) == 0)
                fail(file, "metric \"" + e.metric +
                               "\": serve.* metrics need a \"serving\" "
                               "scenario");
            sc.expect.push_back(std::move(e));
        }
    }

    if (const JsonValue* sweep = doc.find("sweep"))
        parse_sweep_into(&sc, *sweep, file);
    return sc;
}

void
attach_sweep(Scenario* sc, const JsonValue& doc, const std::string& file)
{
    const std::string& where = file.empty() ? sc->file : file;
    if (sc->is_sweep())
        fail(where, "scenario \"" + sc->name +
                        "\" already declares a sweep; --grid cannot "
                        "attach a second one");
    parse_sweep_into(sc, doc, where);
}

Scenario
materialize_sweep_point(const Scenario& sc, size_t index)
{
    if (index >= sc.sweep.points.size())
        throw ScenarioError("sweep point index out of range");
    const SweepPoint& pt = sc.sweep.points[index];
    Scenario out = sc;
    out.sweep = SweepSpec{};
    out.name = sc.name + "/" + pt.name;
    out.kernels.insert(out.kernels.end(), pt.kernels.begin(),
                       pt.kernels.end());
    out.expect.insert(out.expect.end(), pt.expect.begin(), pt.expect.end());
    return out;
}

Scenario
parse_scenario_text(const std::string& text, const std::string& file)
{
    try {
        return parse_scenario(json_parse(text), file);
    } catch (const JsonError& e) {
        fail(file, e.what());
    }
}

Scenario
load_scenario_file(const std::string& path)
{
    try {
        return parse_scenario(json_parse_file(path), path);
    } catch (const JsonError& e) {
        // Type errors thrown by as_int()/as_number() during schema
        // extraction carry no location; prefix the file like every
        // other diagnostic (json_parse_file already includes it).
        std::string what = e.what();
        if (what.rfind(path, 0) == 0)
            throw ScenarioError(what);
        fail(path, what);
    }
}

const char*
tc_mode_key(TcMode mode)
{
    switch (mode) {
      case TcMode::kFp16: return "fp16";
      case TcMode::kMixed: return "mixed";
      case TcMode::kInt8: return "int8";
      case TcMode::kInt4: return "int4";
    }
    return "?";
}

const char*
scheduler_key(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::kGto: return "gto";
      case SchedulerPolicy::kLrr: return "lrr";
      case SchedulerPolicy::kTwoLevel: return "two_level";
    }
    return "?";
}

}  // namespace driver
}  // namespace tcsim
