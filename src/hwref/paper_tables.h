#pragma once
/**
 * @file
 * Verbatim measurements published in the paper, used as hardware
 * ground truth by the benchmark harness (we have no physical Titan V;
 * see DESIGN.md section 4).  Cumulative HMMA cycle tables live in
 * sass/hmma_timing.h; this file holds the remaining figures.
 */

#include <vector>

namespace tcsim {
namespace hwref {

/** Fig 15: minimum observed latencies (cycles) of the WMMA PTX
 *  operations on the Titan V (1024^2 shared-memory GEMM). */
inline constexpr int kMinWmmaLoadLatency = 125;
inline constexpr int kMinWmmaStoreLatency = 120;
inline constexpr int kMinWmmaMmaLatency = 70;

/** Section V-C: measured peak tensor-core throughput (TFLOPS). */
inline constexpr double kMaxPerfFp16Tflops = 109.6;
inline constexpr double kMaxPerfMixedTflops = 108.7;
inline constexpr double kPeakTensorTflops = 125.0;
/** Best GEMM kernel observed: 8192^2 FP16 cuBLAS. */
inline constexpr double kBestGemmTflops = 96.0;

/**
 * Fig 12c (digitized): cycles to execute parallel HMMA operations
 * versus warps per CTA on one SM.  Flat while each warp owns a
 * tensor-core pair (<= 4 warps = 4 sub-cores), then rising as pairs
 * serialize.
 */
std::vector<double> fig12c_hw_cycles();

/**
 * Fig 17 (digitized): hardware TFLOPS per kernel family across
 * square sizes {256, 512, 1024, 2048, 4096, 8192, 16384}.
 */
struct Fig17Series
{
    const char* name;
    std::vector<double> tflops;
};

std::vector<double> fig17_sizes();
std::vector<Fig17Series> fig17_hw_series();

}  // namespace hwref
}  // namespace tcsim
