#include "hwref/paper_tables.h"

namespace tcsim {
namespace hwref {

std::vector<double>
fig12c_hw_cycles()
{
    // Digitized from Fig 12c: approximately flat through four warps,
    // then stepwise increase as tensor-core pairs serialize.
    return {60, 62, 64, 66, 115, 160, 205, 250};
}

std::vector<double>
fig17_sizes()
{
    return {256, 512, 1024, 2048, 4096, 8192, 16384};
}

std::vector<Fig17Series>
fig17_hw_series()
{
    // Digitized from Fig 17 (values approximate; the shape -- who
    // wins, by what factor, where curves saturate -- is what the
    // reproduction targets).
    return {
        {"CUBLAS_WO_TC_FP32", {4, 8, 11, 13, 14, 14, 14}},
        {"CUBLAS_WO_TC_FP16", {6, 12, 19, 25, 28, 30, 30}},
        {"WMMA_OPTIMIZED", {5, 10, 15, 19, 21, 22, 22}},
        {"CUBLAS_WITH_TC_FP32", {12, 28, 52, 74, 85, 90, 88}},
        {"CUBLAS_WITH_TC_FP16", {13, 30, 56, 78, 90, 96, 93}},
        {"MAX_PERF_FP16", {109.6, 109.6, 109.6, 109.6, 109.6, 109.6, 109.6}},
        {"MAX_PERF_FP32", {108.7, 108.7, 108.7, 108.7, 108.7, 108.7, 108.7}},
        {"THEORETICAL_LIMIT", {125, 125, 125, 125, 125, 125, 125}},
    };
}

}  // namespace hwref
}  // namespace tcsim
