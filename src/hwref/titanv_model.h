#pragma once
/**
 * @file
 * Analytical Titan V performance model: the "hardware" side of the
 * validation experiments (Figs 14a/14b/14c).
 *
 * The model is deliberately a *different mechanism* from the
 * simulator: closed-form roofline bounds (tensor-core issue, DRAM
 * bandwidth, instruction issue) composed with wave quantization and
 * fixed ramp latencies, with per-kernel-family efficiency factors
 * calibrated once against the paper's published endpoints (Fig 17
 * saturation levels, Fig 12c).  Correlating the simulator against it
 * is therefore non-circular by construction: agreement means both
 * independently approximate the same machine.
 */

#include <cstdint>

#include "arch/gpu_config.h"
#include "tensor/types.h"

namespace tcsim {
namespace hwref {

/** Kernel families the model understands. */
enum class KernelFamily {
    kWmmaNaive,    ///< One tile per warp, operands from global.
    kWmmaShared,   ///< Shared-memory staged WMMA (single buffered).
    kCutlass,      ///< Pipelined CUTLASS-style GEMM.
    kSgemmSimt,    ///< FP32 FFMA GEMM (no tensor cores).
    kHgemmSimt,    ///< Packed FP16 GEMM (no tensor cores).
};

/** A GEMM workload instance for the analytical model. */
struct GemmWorkload
{
    KernelFamily family = KernelFamily::kCutlass;
    TcMode mode = TcMode::kMixed;
    int m = 0, n = 0, k = 0;
    /** Threadblock tile (CUTLASS/shared families). */
    int block_m = 128, block_n = 128, block_k = 32;
    /** Warp tile (CUTLASS family). */
    int warp_m = 32, warp_n = 64;
    int warps_per_cta = 8;
    /** Software pipelining (CUTLASS family). */
    bool double_buffer = true;
};

/** Analytical prediction for one workload. */
struct HwPrediction
{
    double cycles = 0.0;
    double instructions = 0.0;
    double ipc = 0.0;
    double tflops = 0.0;
};

/** The analytical model, parameterized by a GPU configuration. */
class TitanVModel
{
  public:
    explicit TitanVModel(const GpuConfig& cfg) : cfg_(cfg) {}

    /** Predict cycles/IPC/TFLOPS for a GEMM workload. */
    HwPrediction predict(const GemmWorkload& w) const;

    /** Dynamic warp-instruction count of the workload's kernel
     *  (micro-instruction level, matching the simulator's counter). */
    double instruction_count(const GemmWorkload& w) const;

  private:
    double compute_bound_cycles(const GemmWorkload& w) const;
    double memory_bound_cycles(const GemmWorkload& w) const;
    double issue_bound_cycles(const GemmWorkload& w) const;
    double efficiency(const GemmWorkload& w) const;
    double ramp_cycles(const GemmWorkload& w) const;

    GpuConfig cfg_;
};

}  // namespace hwref
}  // namespace tcsim
