#include "hwref/titanv_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sass/hmma_decomposer.h"

namespace tcsim {
namespace hwref {

namespace {

bool
uses_tensor_cores(KernelFamily f)
{
    return f == KernelFamily::kWmmaNaive || f == KernelFamily::kWmmaShared ||
           f == KernelFamily::kCutlass;
}

double
wmma_ops(const GemmWorkload& w)
{
    return static_cast<double>(w.m / 16) * (w.n / 16) * (w.k / 16);
}

}  // namespace

double
TitanVModel::compute_bound_cycles(const GemmWorkload& w) const
{
    const double subcores =
        static_cast<double>(cfg_.num_sms) * cfg_.subcores_per_sm;
    if (uses_tensor_cores(w.family)) {
        // Each wmma.mma occupies a sub-core's tensor core pair for
        // group_size x II = 32 cycles (Section IV).
        int group = hmma_group_size(Arch::kVolta, w.mode);
        int ii = w.mode == TcMode::kMixed ? 2 : 4;
        return wmma_ops(w) * group * ii / subcores;
    }
    // SIMT: one warp-wide FMA retires 32 (FP32) or 64 (packed FP16)
    // MACs and occupies the FP32 path for 2 cycles.
    double macs = static_cast<double>(w.m) * w.n * w.k;
    double macs_per_issue = w.family == KernelFamily::kHgemmSimt ? 64 : 32;
    return macs / macs_per_issue * 2.0 / subcores;
}

double
TitanVModel::memory_bound_cycles(const GemmWorkload& w) const
{
    const double e = 2.0;  // FP16 operands
    const double cd_e = w.mode == TcMode::kMixed ? 4.0 : 2.0;
    double a_bytes = static_cast<double>(w.m) * w.k * e;
    double b_bytes = static_cast<double>(w.k) * w.n * e;
    double cd_bytes = static_cast<double>(w.m) * w.n * cd_e * 2.0;

    // Tiling reuse: A blocks are re-read across N block columns, but
    // the L2 plus rasterization locality (nearby CTAs share blocks)
    // bounds the amplification.
    double reuse_a = a_bytes < 0.9 * cfg_.l2_size ? 1.0 : 2.0;
    double reuse_b = b_bytes < 0.9 * cfg_.l2_size ? 1.0 : 2.0;

    double traffic = a_bytes * reuse_a + b_bytes * reuse_b + cd_bytes;
    double bw = cfg_.num_mem_partitions *
                cfg_.dram_bytes_per_cycle_per_partition;
    return traffic / bw;
}

double
TitanVModel::issue_bound_cycles(const GemmWorkload& w) const
{
    const double subcores =
        static_cast<double>(cfg_.num_sms) * cfg_.subcores_per_sm;
    return instruction_count(w) / subcores;
}

double
TitanVModel::efficiency(const GemmWorkload& w) const
{
    // Calibrated once against Fig 17 saturation levels:
    // cuBLAS-TC ~96/125, MAX-PERF ~110/125, SIMT SGEMM ~14/15.7,
    // WMMA-optimized well below cuBLAS.
    switch (w.family) {
      case KernelFamily::kCutlass: return 0.40;
      case KernelFamily::kWmmaShared: return 0.50;
      case KernelFamily::kWmmaNaive: return 0.45;
      case KernelFamily::kSgemmSimt: return 0.88;
      case KernelFamily::kHgemmSimt: return 0.88;
    }
    return 1.0;
}

double
TitanVModel::ramp_cycles(const GemmWorkload& w) const
{
    // Pipeline fill/drain plus wave-tail quantization.
    double ctas = (static_cast<double>(w.m) / w.block_m) *
                  (static_cast<double>(w.n) / w.block_n);
    double concurrent = static_cast<double>(cfg_.num_sms) * 2.0;
    double waves = std::ceil(ctas / concurrent);
    return 320.0 + waves * 160.0 + static_cast<double>(w.k) * 0.4;
}

double
TitanVModel::instruction_count(const GemmWorkload& w) const
{
    // Dominant dynamic instruction terms per kernel family, at the
    // micro (SASS-like) level the simulator counts.
    double ops = wmma_ops(w);
    int group = hmma_group_size(Arch::kVolta, w.mode);
    double hmma = ops * group;

    if (w.family == KernelFamily::kWmmaNaive) {
        // Per wmma op: ~4 operand-load instructions; per output tile:
        // C load + D store (8 x 32-bit each way) + loop overhead.
        double tiles = static_cast<double>(w.m / 16) * (w.n / 16);
        return hmma + ops * 6.0 + tiles * 20.0;
    }
    if (w.family == KernelFamily::kWmmaShared ||
        w.family == KernelFamily::kCutlass) {
        // Fragment loads from shared + staging traffic + epilogue.
        double tiles = static_cast<double>(w.m / 16) * (w.n / 16);
        double frag_loads = ops * 5.0;
        double kblocks = static_cast<double>(w.k) / w.block_k;
        double ctas = (static_cast<double>(w.m) / w.block_m) *
                      (static_cast<double>(w.n) / w.block_n);
        double staging = ctas * kblocks * w.warps_per_cta * 10.0;
        return hmma + frag_loads + staging + tiles * 20.0;
    }
    // SIMT: FMA instructions dominate.
    double macs = static_cast<double>(w.m) * w.n * w.k;
    double fma = macs / (w.family == KernelFamily::kHgemmSimt ? 64.0 : 32.0);
    return fma * 1.15;  // + loads/stores/loop overhead
}

HwPrediction
TitanVModel::predict(const GemmWorkload& w) const
{
    double compute = compute_bound_cycles(w);
    double memory = memory_bound_cycles(w);
    double issue = issue_bound_cycles(w);

    // Only as many SMs as there are CTAs contribute; all per-chip
    // throughput bounds scale by the idle fraction.
    double ctas = (static_cast<double>(w.m) / w.block_m) *
                  (static_cast<double>(w.n) / w.block_n);
    double active = std::min(static_cast<double>(cfg_.num_sms), ctas);
    double occupancy_scale = static_cast<double>(cfg_.num_sms) / active;

    // Shared-memory pipe bound for staged tensor-core kernels: each
    // 16x16 fragment read costs ~16 shared-pipe cycles (two 128-bit
    // or four 64-bit accesses at conflict degree ~2); warp-level tile
    // reuse divides the fragment count per wmma op.
    double shared = 0.0;
    if (w.family == KernelFamily::kWmmaShared ||
        w.family == KernelFamily::kCutlass) {
        double wm = 1.0, wn = 1.0;  // plain WMMA kernel: no reuse
        if (w.family == KernelFamily::kCutlass) {
            wm = w.warp_m / 16.0;
            wn = w.warp_n / 16.0;
        }
        double frag_cost = w.family == KernelFamily::kCutlass ? 12.0 : 16.0;
        double pipe_cycles_per_op = frag_cost * (wm + wn) / (wm * wn);
        shared = wmma_ops(w) * pipe_cycles_per_op / cfg_.num_sms;
    }

    // L1/LDST-port bound: sectors moved per wmma op through the
    // global pipe (dominates the unstaged kernel, whose operand tiles
    // stream from global memory every K step).
    double l1_port = 0.0;
    if (w.family == KernelFamily::kWmmaNaive) {
        double sectors_per_op = 32.0;  // A: 2x8, B: 2x8 sectors
        l1_port = wmma_ops(w) * sectors_per_op / 2.0 / cfg_.num_sms;
    }

    double bound = std::max({compute * occupancy_scale, memory,
                             issue * occupancy_scale,
                             shared * occupancy_scale,
                             l1_port * occupancy_scale});

    // K-loop latency floor: without software pipelining every K block
    // exposes a global-load -> (stage ->) consume critical path; it
    // binds when too few CTAs are resident to hide it.
    double iter_latency = 0.0;
    switch (w.family) {
      case KernelFamily::kWmmaNaive: iter_latency = 340.0; break;
      case KernelFamily::kWmmaShared: iter_latency = 1000.0; break;
      case KernelFamily::kSgemmSimt:
      case KernelFamily::kHgemmSimt: iter_latency = 520.0; break;
      case KernelFamily::kCutlass:
        // Software pipelining hides most of the per-K-block latency.
        iter_latency = w.double_buffer ? 100.0 : 1000.0;
        break;
    }
    int kchunk = w.family == KernelFamily::kWmmaNaive ? 16 : w.block_k;
    double latency_floor =
        static_cast<double>(w.k) / kchunk * iter_latency;

    HwPrediction p;
    p.cycles = std::max(bound / efficiency(w), latency_floor) +
               ramp_cycles(w);
    p.instructions = instruction_count(w);
    p.ipc = p.instructions / p.cycles;
    double flops = 2.0 * w.m * w.n * static_cast<double>(w.k);
    p.tflops = flops / (p.cycles / (cfg_.clock_ghz * 1e9)) / 1e12;
    return p;
}

}  // namespace hwref
}  // namespace tcsim
