#pragma once
/**
 * @file
 * Decomposition of wmma.mma PTX instructions into HMMA SASS
 * instruction groups (Section III-C/III-D of the paper) and the
 * subtile geometry of each set/step (Fig 10, Fig 11, Tables II/III).
 *
 * Volta: mixed precision -> 4 sets x 4 steps (16 HMMAs);
 *        FP16           -> 4 sets x 2 steps (8 HMMAs).
 * Turing: 4 HMMAs (one per set) for all modes except INT4, which is
 *        a single HMMA.
 */

#include <vector>

#include "arch/gpu_config.h"
#include "isa/instruction.h"
#include "tensor/types.h"

namespace tcsim {

/** Inclusive 2-D element range within an operand tile. */
struct SubtileRange
{
    int row0 = 0, row1 = 0;
    int col0 = 0, col1 = 0;

    bool operator==(const SubtileRange&) const = default;
    int rows() const { return row1 - row0 + 1; }
    int cols() const { return col1 - col0 + 1; }
};

/**
 * The computation performed by one threadgroup in one Volta HMMA
 * step: D[cd] += A[a] x B[b] in global tile coordinates (Table III).
 */
struct VoltaStepCompute
{
    SubtileRange a;   ///< rows of A used x K chunk.
    SubtileRange b;   ///< K chunk x columns of B used.
    SubtileRange cd;  ///< accumulator region written.
};

/**
 * Geometry of a Volta HMMA step for one threadgroup.
 *
 * @param mode  kMixed or kFp16.
 * @param tg    threadgroup id [0, 8).
 * @param set   set index [0, 4).
 * @param step  step index [0, 4) mixed, [0, 2) FP16.
 */
VoltaStepCompute volta_step_compute(TcMode mode, int tg, int set, int step);

/** Steps per set on Volta: 4 in mixed precision, 2 in FP16. */
int volta_steps_per_set(TcMode mode);

/**
 * The warp-level computation of one Turing HMMA set (Fig 11).
 */
struct TuringSetCompute
{
    SubtileRange a;
    SubtileRange b;
    SubtileRange cd;
};

TuringSetCompute turing_set_compute(TcMode mode, TileShape shape, int set);

/** Number of HMMA instructions (sets) per wmma.mma on Turing. */
int turing_num_sets(TcMode mode);

/**
 * Octet operand footprint (Table II): the union of the subtiles of
 * operand matrices A and B accessed by the two threadgroups of octet
 * @p octet across all sets/steps on Volta.
 */
SubtileRange volta_octet_a_range(int octet);
SubtileRange volta_octet_b_range(int octet);

/** Register-pair bases for the operand fragments of a wmma.mma. */
struct WmmaRegs
{
    uint8_t a = 0;  ///< First register of the A fragment.
    uint8_t b = 0;
    uint8_t c = 0;
    uint8_t d = 0;  ///< May equal c for in-place accumulation.
};

/**
 * Emit the HMMA instruction group implementing one wmma.mma.
 *
 * The emitted instructions carry set/step annotations and the operand
 * base registers; `first_in_group` / `last_in_group` mark the
 * boundaries the timing model uses (the group issues back-to-back and
 * only the final HMMA releases the destination registers).
 */
std::vector<Instruction> decompose_wmma_mma(Arch arch, TcMode mode,
                                            TileShape shape,
                                            const WmmaRegs& regs,
                                            Layout a_layout, Layout b_layout,
                                            uint32_t macro_id = 0);

/** Total HMMA instructions per wmma.mma for the given configuration. */
int hmma_group_size(Arch arch, TcMode mode);

/** Registers per thread used by each operand fragment. */
struct WmmaFragRegCounts
{
    int a = 0, b = 0, c = 0, d = 0;
};

WmmaFragRegCounts wmma_fragment_regs(Arch arch, TcMode mode, TileShape shape);

}  // namespace tcsim
