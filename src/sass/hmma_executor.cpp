#include "sass/hmma_executor.h"

#include "common/logging.h"

namespace tcsim {

namespace {

/** Build the per-threadgroup and any-owner location tables. */
void
build_loc_tables(const FragmentMap& map,
                 std::array<std::vector<int32_t>, kThreadgroupsPerWarp>* per_tg,
                 std::vector<int32_t>* any)
{
    int rows = map.shape().rows(map.op());
    int cols = map.shape().cols(map.op());
    size_t n = static_cast<size_t>(rows) * cols;
    if (per_tg) {
        for (auto& t : *per_tg)
            t.assign(n, -1);
    }
    any->assign(n, -1);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        int tg = threadgroup_of_lane(lane);
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            const auto& e = elems[slot];
            size_t idx = static_cast<size_t>(e.row) * cols + e.col;
            int32_t packed =
                static_cast<int32_t>((lane << 8) | static_cast<int>(slot));
            if (per_tg && (*per_tg)[tg][idx] < 0)
                (*per_tg)[tg][idx] = packed;
            if ((*any)[idx] < 0)
                (*any)[idx] = packed;
        }
    }
}

}  // namespace

HmmaExecutor::HmmaExecutor(Arch arch, TcMode mode, TileShape shape,
                           Layout a_layout, Layout b_layout)
    : arch_(arch), mode_(mode), shape_(shape),
      a_map_(fragment_map(arch, WmmaOperand::kA, shape, mode, a_layout)),
      b_map_(fragment_map(arch, WmmaOperand::kB, shape, mode, b_layout)),
      cd_map_(fragment_map(arch, WmmaOperand::kD, shape, mode,
                           Layout::kRowMajor))
{
    build_loc_tables(a_map_, &a_loc_tg_, &a_loc_any_);
    build_loc_tables(b_map_, &b_loc_tg_, &b_loc_any_);
    build_loc_tables(cd_map_, nullptr, &cd_loc_);
}

int32_t
HmmaExecutor::lookup(const std::array<LocTable, kThreadgroupsPerWarp>& per_tg,
                     const LocTable& any, int idx, int owner_tg) const
{
    if (owner_tg >= 0) {
        int32_t loc = per_tg[owner_tg][idx];
        if (loc >= 0)
            return loc;
    }
    int32_t loc = any[static_cast<size_t>(idx)];
    TCSIM_CHECK(loc >= 0);
    return loc;
}

float
HmmaExecutor::read_a(const WarpRegState& regs, const HmmaInfo& info, int r,
                     int c, int owner_tg) const
{
    int idx = r * shape_.cols(WmmaOperand::kA) + c;
    int32_t loc = lookup(a_loc_tg_, a_loc_any_, idx, owner_tg);
    int lane = loc >> 8, slot = loc & 0xff;
    return regs.read_h16(lane, info.a_reg + slot / 2, slot % 2).to_float();
}

float
HmmaExecutor::read_b(const WarpRegState& regs, const HmmaInfo& info, int r,
                     int c, int owner_tg) const
{
    int idx = r * shape_.cols(WmmaOperand::kB) + c;
    int32_t loc = lookup(b_loc_tg_, b_loc_any_, idx, owner_tg);
    int lane = loc >> 8, slot = loc & 0xff;
    return regs.read_h16(lane, info.b_reg + slot / 2, slot % 2).to_float();
}

float
HmmaExecutor::read_acc(const WarpRegState& regs, uint8_t base_reg, int r,
                       int c) const
{
    int idx = r * shape_.n + c;
    int32_t loc = cd_loc_[static_cast<size_t>(idx)];
    TCSIM_CHECK(loc >= 0);
    int lane = loc >> 8, slot = loc & 0xff;
    if (mode_ == TcMode::kFp16)
        return regs.read_h16(lane, base_reg + slot / 2, slot % 2).to_float();
    return regs.read_f32(lane, base_reg + slot);
}

void
HmmaExecutor::write_acc(WarpRegState& regs, uint8_t base_reg, int r, int c,
                        float value) const
{
    int idx = r * shape_.n + c;
    int32_t loc = cd_loc_[static_cast<size_t>(idx)];
    TCSIM_CHECK(loc >= 0);
    int lane = loc >> 8, slot = loc & 0xff;
    if (mode_ == TcMode::kFp16)
        regs.write_h16(lane, base_reg + slot / 2, slot % 2, half(value));
    else
        regs.write_f32(lane, base_reg + slot, value);
}

int
HmmaExecutor::read_int_ab(const WarpRegState& regs, const FragmentMap& map,
                          uint8_t base_reg, int r, int c) const
{
    int idx = r * map.shape().cols(map.op()) + c;
    const auto& any = &map == &a_map_ ? a_loc_any_ : b_loc_any_;
    int32_t loc = any[static_cast<size_t>(idx)];
    TCSIM_CHECK(loc >= 0);
    int lane = loc >> 8, slot = loc & 0xff;
    if (mode_ == TcMode::kInt8)
        return regs.read_i8(lane, base_reg + slot / 4, slot % 4);
    return regs.read_i4(lane, base_reg + slot / 8, slot % 8);
}

int32_t
HmmaExecutor::read_acc_i32(const WarpRegState& regs, uint8_t base_reg, int r,
                           int c) const
{
    int idx = r * shape_.n + c;
    int32_t loc = cd_loc_[static_cast<size_t>(idx)];
    TCSIM_CHECK(loc >= 0);
    int lane = loc >> 8, slot = loc & 0xff;
    return static_cast<int32_t>(regs.read(lane, base_reg + slot));
}

void
HmmaExecutor::write_acc_i32(WarpRegState& regs, uint8_t base_reg, int r,
                            int c, int32_t value) const
{
    int idx = r * shape_.n + c;
    int32_t loc = cd_loc_[static_cast<size_t>(idx)];
    TCSIM_CHECK(loc >= 0);
    int lane = loc >> 8, slot = loc & 0xff;
    regs.write(lane, base_reg + slot, static_cast<uint32_t>(value));
}

void
HmmaExecutor::accumulate(const HmmaInfo& info, WarpRegState& regs,
                         const SubtileRange& a, const SubtileRange& b,
                         const SubtileRange& cd, int a_owner_tg,
                         int b_owner_tg, bool first_set) const
{
    TCSIM_CHECK(a.col1 - a.col0 == b.row1 - b.row0);
    const int kextent = a.col1 - a.col0 + 1;
    const uint8_t acc_src = first_set ? info.c_reg : info.d_reg;

    const bool integer = mode_ == TcMode::kInt8 || mode_ == TcMode::kInt4;

    for (int r = cd.row0; r <= cd.row1; ++r) {
        const int ar = a.row0 + (r - cd.row0);
        for (int c = cd.col0; c <= cd.col1; ++c) {
            const int bc = b.col0 + (c - cd.col0);
            if (integer) {
                int64_t sum = 0;
                for (int k = 0; k < kextent; ++k) {
                    sum += static_cast<int64_t>(read_int_ab(
                               regs, a_map_, info.a_reg, ar, a.col0 + k)) *
                           read_int_ab(regs, b_map_, info.b_reg, b.row0 + k,
                                       bc);
                }
                int64_t acc = read_acc_i32(regs, acc_src, r, c) + sum;
                write_acc_i32(regs, info.d_reg, r, c,
                              static_cast<int32_t>(acc));
            } else {
                // FEDP accumulation tree: products computed exactly,
                // pairwise adds within each 4-element group, then the
                // group sums are accumulated, rounding at the final
                // accumulator write (FP16 mode only).
                TCSIM_CHECK(kextent % 4 == 0);
                float sum = 0.0f;
                for (int g = 0; g < kextent; g += 4) {
                    float p0 = read_a(regs, info, ar, a.col0 + g + 0,
                                      a_owner_tg) *
                               read_b(regs, info, b.row0 + g + 0, bc,
                                      b_owner_tg);
                    float p1 = read_a(regs, info, ar, a.col0 + g + 1,
                                      a_owner_tg) *
                               read_b(regs, info, b.row0 + g + 1, bc,
                                      b_owner_tg);
                    float p2 = read_a(regs, info, ar, a.col0 + g + 2,
                                      a_owner_tg) *
                               read_b(regs, info, b.row0 + g + 2, bc,
                                      b_owner_tg);
                    float p3 = read_a(regs, info, ar, a.col0 + g + 3,
                                      a_owner_tg) *
                               read_b(regs, info, b.row0 + g + 3, bc,
                                      b_owner_tg);
                    sum += (p0 + p1) + (p2 + p3);
                }
                float acc = read_acc(regs, acc_src, r, c) + sum;
                write_acc(regs, info.d_reg, r, c, acc);
            }
        }
    }
}

void
HmmaExecutor::execute_step(const HmmaInfo& info, WarpRegState& regs) const
{
    TCSIM_CHECK(info.mode == mode_);
    TCSIM_CHECK(info.shape == shape_);

    if (arch_ == Arch::kVolta) {
        const int set = info.set;
        const int step = info.step;
        const bool first_set = set == 0;
        for (int tg = 0; tg < kThreadgroupsPerWarp; ++tg) {
            VoltaStepCompute sc = volta_step_compute(mode_, tg, set, step);
            // The B stripe used in the early steps is the one loaded by
            // the lower threadgroup of the octet (Table III).
            const int octet = octet_of_threadgroup(tg);
            const bool own_half =
                mode_ == TcMode::kMixed ? step < 2 : step < 1;
            const int b_owner = own_half ? octet : octet + 4;
            accumulate(info, regs, sc.a, sc.b, sc.cd, tg, b_owner, first_set);
        }
        return;
    }

    // Turing: one warp-level region per set.
    TuringSetCompute sc = turing_set_compute(mode_, shape_, info.set);
    // first_set: true the first time this accumulator region is
    // touched, i.e. when the K chunk of the set is the first chunk.
    bool first_set = true;
    if (mode_ == TcMode::kFp16 || mode_ == TcMode::kMixed) {
        if (shape_ == kShape16x16x16 || shape_ == kShape8x32x16)
            first_set = info.set % 2 == 0;  // kk = 8 * (set % 2)
        else if (shape_ == kShape32x8x16)
            first_set = info.set / 2 == 0;  // kk = 8 * (set / 2)
    }
    // INT modes consume the full K extent in every set, so each
    // accumulator region is touched exactly once: always first.
    accumulate(info, regs, sc.a, sc.b, sc.cd, -1, -1, first_set);
}

void
HmmaExecutor::execute_group(const std::vector<Instruction>& group,
                            WarpRegState& regs) const
{
    for (const auto& inst : group) {
        TCSIM_CHECK(inst.op == Opcode::kHmma);
        execute_step(inst.hmma, regs);
    }
}

}  // namespace tcsim
