#include "sass/microbench.h"

#include "common/logging.h"

namespace tcsim {

std::vector<size_t>
find_hmma_indices(const WarpProgram& prog)
{
    std::vector<size_t> idx;
    for (size_t i = 0; i < prog.size(); ++i)
        if (prog[i].op == Opcode::kHmma)
            idx.push_back(i);
    return idx;
}

int
patch_nops_except(WarpProgram* prog, size_t keep_ordinal)
{
    TCSIM_CHECK(prog != nullptr);
    auto hmma = find_hmma_indices(*prog);
    TCSIM_CHECK(keep_ordinal < hmma.size());
    int patched = 0;
    for (size_t ord = 0; ord < hmma.size(); ++ord) {
        if (ord == keep_ordinal)
            continue;
        Instruction& inst = (*prog)[hmma[ord]];
        inst = Instruction{};
        inst.op = Opcode::kNop;
        ++patched;
    }
    // The survivor now forms a one-instruction group: it must both
    // open the tensor-core group and release the destination
    // registers itself.
    Instruction& kept = (*prog)[hmma[keep_ordinal]];
    kept.hmma.first_in_group = true;
    kept.hmma.last_in_group = true;
    kept.macro_end = true;
    return patched;
}

void
inject_clocks(WarpProgram* prog, size_t n, uint8_t reg_start, uint8_t reg_end)
{
    TCSIM_CHECK(prog != nullptr);
    auto hmma = find_hmma_indices(*prog);
    TCSIM_CHECK(n >= 1 && n <= hmma.size());

    Instruction start;
    start.op = Opcode::kCs2r;
    start.n_dst = 1;
    start.dst[0] = reg_start;

    Instruction end;
    end.op = Opcode::kCs2r;
    end.n_dst = 1;
    end.dst[0] = reg_end;
    // Observe completion, not issue: depend on the n-th HMMA's
    // destination fragment.
    end.n_src = 1;
    end.src[0] = (*prog)[hmma[n - 1]].hmma.d_reg;

    // Insert the trailing read first so the leading insertion does not
    // shift its index.
    prog->insert(prog->begin() + static_cast<long>(hmma[n - 1]) + 1, end);
    prog->insert(prog->begin() + static_cast<long>(hmma[0]), start);
}

void
truncate_hmma_group(WarpProgram* prog, size_t n)
{
    TCSIM_CHECK(prog != nullptr);
    auto hmma = find_hmma_indices(*prog);
    TCSIM_CHECK(n >= 1 && n <= hmma.size());
    for (size_t ord = n; ord < hmma.size(); ++ord) {
        Instruction& inst = (*prog)[hmma[ord]];
        inst = Instruction{};
        inst.op = Opcode::kNop;
    }
    Instruction& tail = (*prog)[hmma[n - 1]];
    tail.hmma.last_in_group = true;
    tail.macro_end = true;
}

}  // namespace tcsim
