#include "sass/hmma_decomposer.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/mapping_volta.h"

namespace tcsim {

int
volta_steps_per_set(TcMode mode)
{
    TCSIM_CHECK(mode == TcMode::kMixed || mode == TcMode::kFp16);
    return mode == TcMode::kMixed ? 4 : 2;
}

VoltaStepCompute
volta_step_compute(TcMode mode, int tg, int set, int step)
{
    TCSIM_CHECK(tg >= 0 && tg < kThreadgroupsPerWarp);
    TCSIM_CHECK(set >= 0 && set < 4);
    TCSIM_CHECK(step >= 0 && step < volta_steps_per_set(mode));

    const int row0 = kVoltaARowStart[tg];  // threadgroup's 4 A/D rows
    const int k0 = 4 * set;                // K chunk of this set

    // The B stripe consumed in the early steps belongs to the lower
    // threadgroup of the octet; the later steps consume the partner's
    // stripe (Table III: steps 0-1 use subtile loaded by tg X, steps
    // 2-3 the one loaded by tg X+4; in FP16 mode step 0 vs step 1).
    const int octet = octet_of_threadgroup(tg);
    const bool own_half = mode == TcMode::kMixed ? step < 2 : step < 1;
    const int stripe_tg = own_half ? octet : octet + 4;
    const int bcol0 = kVoltaBColStart[stripe_tg];

    VoltaStepCompute sc;
    if (mode == TcMode::kMixed) {
        // Steps 0/2 compute output rows {0,1} of the threadgroup's
        // block; steps 1/3 rows {2,3} (Fig 10b).
        const int rlo = row0 + 2 * (step & 1);
        sc.a = {rlo, rlo + 1, k0, k0 + 3};
        sc.b = {k0, k0 + 3, bcol0, bcol0 + 3};
        sc.cd = {rlo, rlo + 1, bcol0, bcol0 + 3};
    } else {
        // FP16: each step computes the full 4x4 block (Fig 10c).
        sc.a = {row0, row0 + 3, k0, k0 + 3};
        sc.b = {k0, k0 + 3, bcol0, bcol0 + 3};
        sc.cd = {row0, row0 + 3, bcol0, bcol0 + 3};
    }
    return sc;
}

SubtileRange
volta_octet_a_range(int octet)
{
    TCSIM_CHECK(octet >= 0 && octet < kOctetsPerWarp);
    const auto& r = kVoltaOctetRanges[octet];
    return {r.a_row0, r.a_row1, 0, 15};
}

SubtileRange
volta_octet_b_range(int octet)
{
    TCSIM_CHECK(octet >= 0 && octet < kOctetsPerWarp);
    const auto& r = kVoltaOctetRanges[octet];
    return {0, 15, r.b_col0, r.b_col1};
}

int
turing_num_sets(TcMode mode)
{
    return mode == TcMode::kInt4 ? 1 : 4;
}

TuringSetCompute
turing_set_compute(TcMode mode, TileShape shape, int set)
{
    TCSIM_CHECK(set >= 0 && set < turing_num_sets(mode));
    TuringSetCompute sc;

    if (mode == TcMode::kInt4) {
        TCSIM_CHECK(shape == kShape8x8x32);
        sc.a = {0, shape.m - 1, 0, shape.k - 1};
        sc.b = {0, shape.k - 1, 0, shape.n - 1};
        sc.cd = {0, shape.m - 1, 0, shape.n - 1};
        return sc;
    }

    const bool fp = mode == TcMode::kFp16 || mode == TcMode::kMixed;
    if (shape == kShape16x16x16) {
        if (fp) {
            // 16x8 subtile of A times 8x8 subtile of B: sets split K
            // and N in halves of 8.
            int kk = 8 * (set % 2), nn = 8 * (set / 2);
            sc.a = {0, 15, kk, kk + 7};
            sc.b = {kk, kk + 7, nn, nn + 7};
            sc.cd = {0, 15, nn, nn + 7};
        } else {
            // 8-bit: 8x16 subtile of A times 16x8 subtile of B: sets
            // split M and N in halves, K is consumed whole.
            int mm = 8 * (set % 2), nn = 8 * (set / 2);
            sc.a = {mm, mm + 7, 0, 15};
            sc.b = {0, 15, nn, nn + 7};
            sc.cd = {mm, mm + 7, nn, nn + 7};
        }
    } else if (shape == kShape32x8x16) {
        if (fp) {
            // 16x8 A subtile x 8x8 B subtile: sets split M (halves of
            // 16) and K (halves of 8); N = 8 consumed whole.
            int mm = 16 * (set % 2), kk = 8 * (set / 2);
            sc.a = {mm, mm + 15, kk, kk + 7};
            sc.b = {kk, kk + 7, 0, 7};
            sc.cd = {mm, mm + 15, 0, 7};
        } else {
            // 8-bit: 8x16 A x 16x8 B: sets split M in quarters of 8.
            int mm = 8 * set;
            sc.a = {mm, mm + 7, 0, 15};
            sc.b = {0, 15, 0, 7};
            sc.cd = {mm, mm + 7, 0, 7};
        }
    } else if (shape == kShape8x32x16) {
        if (fp) {
            // 8x8 A subtile x 8x16 B subtile: sets split K (halves)
            // and N (halves of 16).
            int kk = 8 * (set % 2), nn = 16 * (set / 2);
            sc.a = {0, 7, kk, kk + 7};
            sc.b = {kk, kk + 7, nn, nn + 15};
            sc.cd = {0, 7, nn, nn + 15};
        } else {
            // 8-bit: 8x16 A x 16x8 B: sets split N in quarters of 8.
            int nn = 8 * set;
            sc.a = {0, 7, 0, 15};
            sc.b = {0, 15, nn, nn + 7};
            sc.cd = {0, 7, nn, nn + 7};
        }
    } else {
        panic("unsupported Turing shape %s for mode %s", shape.str().c_str(),
              tc_mode_name(mode));
    }
    return sc;
}

int
hmma_group_size(Arch arch, TcMode mode)
{
    if (arch == Arch::kVolta)
        return 4 * volta_steps_per_set(mode);
    return turing_num_sets(mode);
}

WmmaFragRegCounts
wmma_fragment_regs(Arch arch, TcMode mode, TileShape shape)
{
    // Elements per thread: tile elements / 32 lanes, doubled on Volta
    // A/B where every element is held by two threads.
    const int dup = arch == Arch::kVolta ? 2 : 1;
    const int a_elems = shape.m * shape.k * dup / kWarpSize;
    const int b_elems = shape.k * shape.n * dup / kWarpSize;
    const int cd_elems = shape.m * shape.n / kWarpSize;

    int ab_pack;  // operand elements per 32-bit register
    switch (mode) {
      case TcMode::kFp16:
      case TcMode::kMixed: ab_pack = 2; break;
      case TcMode::kInt8: ab_pack = 4; break;
      case TcMode::kInt4: ab_pack = 8; break;
    }
    const int cd_pack = mode == TcMode::kFp16 ? 2 : 1;

    WmmaFragRegCounts counts;
    counts.a = std::max(1, a_elems / ab_pack);
    counts.b = std::max(1, b_elems / ab_pack);
    counts.c = std::max(1, cd_elems / cd_pack);
    counts.d = counts.c;
    return counts;
}

std::vector<Instruction>
decompose_wmma_mma(Arch arch, TcMode mode, TileShape shape,
                   const WmmaRegs& regs, Layout a_layout, Layout b_layout,
                   uint32_t macro_id)
{
    std::vector<Instruction> group;

    auto make_hmma = [&](int set, int step) {
        Instruction inst;
        inst.op = Opcode::kHmma;
        inst.hmma.mode = mode;
        inst.hmma.shape = shape;
        inst.hmma.a_layout = a_layout;
        inst.hmma.b_layout = b_layout;
        inst.hmma.set = static_cast<uint8_t>(set);
        inst.hmma.step = static_cast<uint8_t>(step);
        inst.hmma.a_reg = regs.a;
        inst.hmma.b_reg = regs.b;
        inst.hmma.c_reg = regs.c;
        inst.hmma.d_reg = regs.d;
        WmmaFragRegCounts counts = wmma_fragment_regs(arch, mode, shape);
        inst.hmma.a_nregs = static_cast<uint8_t>(counts.a);
        inst.hmma.b_nregs = static_cast<uint8_t>(counts.b);
        inst.hmma.c_nregs = static_cast<uint8_t>(counts.c);
        inst.hmma.d_nregs = static_cast<uint8_t>(counts.d);
        inst.macro_id = macro_id;
        inst.macro_class = MacroClass::kWmmaMma;
        // Scoreboard-visible registers: HMMA reads the full fragments
        // and writes the accumulator; intra-group accumulator reuse is
        // forwarded inside the tensor core, so only group boundaries
        // carry dependences (handled by first/last_in_group flags).
        inst.n_src = 3;
        inst.src[0] = regs.a;
        inst.src[1] = regs.b;
        inst.src[2] = regs.c;
        inst.n_dst = 1;
        inst.dst[0] = regs.d;
        return inst;
    };

    if (arch == Arch::kVolta) {
        TCSIM_CHECK(shape == kShape16x16x16);
        int steps = volta_steps_per_set(mode);
        for (int set = 0; set < 4; ++set)
            for (int step = 0; step < steps; ++step)
                group.push_back(make_hmma(set, step));
    } else {
        for (int set = 0; set < turing_num_sets(mode); ++set)
            group.push_back(make_hmma(set, 0));
    }

    group.front().hmma.first_in_group = true;
    group.back().hmma.last_in_group = true;
    group.back().macro_end = true;
    return group;
}

}  // namespace tcsim
