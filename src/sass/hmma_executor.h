#pragma once
/**
 * @file
 * Functional model of HMMA instruction execution.
 *
 * Executes one HMMA set/step against a warp's register state,
 * computing exactly the outer products of Table III (Volta) or the
 * per-set subtile products of Fig 11 (Turing).  Products are formed
 * exactly (a binary16 product is exactly representable in binary32)
 * and accumulated through the four-element-dot-product (FEDP) tree of
 * the proposed microarchitecture: pairwise adds, then accumulation,
 * rounding to the destination precision at the accumulator write.
 */

#include <array>
#include <vector>

#include "arch/gpu_config.h"
#include "isa/instruction.h"
#include "isa/reg_state.h"
#include "sass/hmma_decomposer.h"
#include "tensor/fragment.h"

namespace tcsim {

/**
 * Functional executor for one (arch, mode, shape, layouts)
 * configuration.  Construction precomputes the element -> (lane,
 * slot) tables; execute_step() is then allocation-free.
 */
class HmmaExecutor
{
  public:
    HmmaExecutor(Arch arch, TcMode mode, TileShape shape, Layout a_layout,
                 Layout b_layout);

    /** Execute one HMMA of a group against @p regs. */
    void execute_step(const HmmaInfo& info, WarpRegState& regs) const;

    /** Execute a full decomposed group in order (test convenience). */
    void execute_group(const std::vector<Instruction>& group,
                       WarpRegState& regs) const;

    const FragmentMap& a_map() const { return a_map_; }
    const FragmentMap& b_map() const { return b_map_; }
    const FragmentMap& cd_map() const { return cd_map_; }

  private:
    /** Read A(r, c) as float, using the copy held by threadgroup
     *  @p owner_tg when the element is multiply-owned (-1 = any). */
    float read_a(const WarpRegState& regs, const HmmaInfo& info, int r, int c,
                 int owner_tg) const;
    float read_b(const WarpRegState& regs, const HmmaInfo& info, int r, int c,
                 int owner_tg) const;

    /** Accumulator element access (C or D fragment registers). */
    float read_acc(const WarpRegState& regs, uint8_t base_reg, int r,
                   int c) const;
    void write_acc(WarpRegState& regs, uint8_t base_reg, int r, int c,
                   float value) const;

    /** Integer operand / accumulator access for Turing INT modes. */
    int read_int_ab(const WarpRegState& regs, const FragmentMap& map,
                    uint8_t base_reg, int r, int c) const;
    int32_t read_acc_i32(const WarpRegState& regs, uint8_t base_reg, int r,
                         int c) const;
    void write_acc_i32(WarpRegState& regs, uint8_t base_reg, int r, int c,
                       int32_t value) const;

    /**
     * Accumulate D[cd] += A[a] x B[b] for one region.  @p a_owner_tg /
     * @p b_owner_tg select which threadgroup's copy of multiply-owned
     * elements feeds the computation (-1 when ownership is unique).
     * @p first_set selects the C registers (vs D) as accumulator
     * source.
     */
    void accumulate(const HmmaInfo& info, WarpRegState& regs,
                    const SubtileRange& a, const SubtileRange& b,
                    const SubtileRange& cd, int a_owner_tg, int b_owner_tg,
                    bool first_set) const;

    /** Packed (lane << 8 | slot) location, -1 when absent. */
    using LocTable = std::vector<int32_t>;

    /** Element location of (r, c) from @p table, preferring the copy
     *  owned by @p owner_tg. */
    int32_t lookup(const std::array<LocTable, kThreadgroupsPerWarp>& per_tg,
                   const LocTable& any, int idx, int owner_tg) const;

    Arch arch_;
    TcMode mode_;
    TileShape shape_;
    FragmentMap a_map_;
    FragmentMap b_map_;
    FragmentMap cd_map_;

    // Precomputed location tables (index = row * cols + col).
    std::array<LocTable, kThreadgroupsPerWarp> a_loc_tg_;
    std::array<LocTable, kThreadgroupsPerWarp> b_loc_tg_;
    LocTable a_loc_any_;
    LocTable b_loc_any_;
    LocTable cd_loc_;
};

}  // namespace tcsim
