#include "sass/hmma_timing.h"

#include <map>
#include <mutex>

#include "common/logging.h"

namespace tcsim {

std::vector<int>
volta_cumulative_cycles(TcMode mode)
{
    // Fig 9a: cumulative clock cycles after each of the 16 HMMAs of a
    // mixed-precision wmma.mma on the Titan V.
    if (mode == TcMode::kMixed) {
        return {10, 12, 14, 18, 20, 22, 24, 28, 30, 32, 34, 38, 40, 42, 44,
                54};
    }
    // Fig 9b: FP16 mode, 8 HMMAs.
    TCSIM_CHECK(mode == TcMode::kFp16);
    return {12, 21, 25, 34, 38, 47, 51, 64};
}

std::vector<int>
turing_set_cumulative_cycles(TcMode mode, TileShape shape)
{
    // Table I: average cumulative clock cycles up to SET n.
    if (shape == kShape16x16x16) {
        switch (mode) {
          case TcMode::kMixed: return {42, 56, 78, 99};
          case TcMode::kFp16: return {44, 52, 60, 74};
          case TcMode::kInt8: return {40, 44, 47, 59};
          default: break;
        }
    } else if (shape == kShape32x8x16) {
        switch (mode) {
          case TcMode::kMixed: return {48, 60, 81, 104};
          case TcMode::kFp16: return {44, 52, 60, 74};
          case TcMode::kInt8: return {52, 55, 59, 73};
          default: break;
        }
    } else if (shape == kShape8x32x16) {
        switch (mode) {
          case TcMode::kMixed: return {42, 56, 77, 99};
          case TcMode::kFp16: return {42, 50, 58, 72};
          case TcMode::kInt8: return {38, 42, 46, 56};
          default: break;
        }
    } else if (shape == kShape8x8x32 && mode == TcMode::kInt4) {
        return {230};
    }
    panic("no Table I entry for mode %s shape %s", tc_mode_name(mode),
          shape.str().c_str());
}

const HmmaTiming&
hmma_timing(Arch arch, TcMode mode, TileShape shape)
{
    struct Key
    {
        Arch arch;
        TcMode mode;
        int m, n, k;
        auto operator<=>(const Key&) const = default;
    };
    // Shared across simulator instances; the batch runner calls in
    // from several threads.  Map nodes are stable and never erased,
    // so returned references stay valid after the lock drops.
    static std::map<Key, HmmaTiming> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);

    Key key{arch, mode, shape.m, shape.n, shape.k};
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    HmmaTiming t;
    if (arch == Arch::kVolta) {
        // Fig 9 measures one completion time per HMMA directly.  The
        // minimum initiation interval is two cycles (Section IV); the
        // FP16 cadence is slower because each HMMA performs twice the
        // work of a mixed-precision step (4x4 vs 2x4 outputs).
        t.issue_interval = mode == TcMode::kMixed ? 2 : 4;
        t.completion_offsets = volta_cumulative_cycles(mode);
    } else {
        // Table I gives one cumulative value per SET = per HMMA.
        t.issue_interval = 2;
        t.completion_offsets = turing_set_cumulative_cycles(mode, shape);
    }
    return cache.emplace(key, std::move(t)).first->second;
}

}  // namespace tcsim
