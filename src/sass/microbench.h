#pragma once
/**
 * @file
 * Replicas of the paper's binary-patching microbenchmark methodology
 * (Figs 5 and 6): NOP-patching all but one HMMA of a wmma.mma group,
 * and injecting clock reads (CS2R SR_CLOCKLO) around an HMMA
 * subsequence.  The paper performed these edits on SASS binaries with
 * radare2; we perform them on warp instruction traces.
 */

#include <cstdint>
#include <vector>

#include "isa/instruction.h"

namespace tcsim {

/** Indices of all HMMA instructions in @p prog. */
std::vector<size_t> find_hmma_indices(const WarpProgram& prog);

/**
 * Replace every HMMA instruction except the @p keep_ordinal -th (0
 * based, in HMMA order) with a NOP, as in Fig 5.  Returns the number
 * of instructions patched.
 */
int patch_nops_except(WarpProgram* prog, size_t keep_ordinal);

/**
 * Insert CS2R clock reads around the first @p n HMMA instructions,
 * as in Fig 6: one read immediately before the first HMMA (into
 * @p reg_start) and one immediately after the n-th (into @p reg_end).
 * The trailing read carries a data dependency on the n-th HMMA's
 * destination so it observes completion, matching the hardware
 * measurement.  After simulation, the elapsed cycle count is
 * reg_end - reg_start.
 */
void inject_clocks(WarpProgram* prog, size_t n, uint8_t reg_start,
                   uint8_t reg_end);

/**
 * Truncate a wmma.mma group to its first @p n HMMAs: instructions
 * n+1.. become NOPs and the n-th is re-marked as the group tail
 * (what patching the remaining HMMAs out of a binary does).
 */
void truncate_hmma_group(WarpProgram* prog, size_t n);

}  // namespace tcsim
