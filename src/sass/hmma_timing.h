#pragma once
/**
 * @file
 * Measured HMMA timing tables: the cumulative clock cycles of Fig 9
 * (Volta) and Table I (Turing), which calibrate the tensor core
 * timing model exactly as the paper calibrated its GPGPU-Sim model
 * from these microbenchmark measurements.
 */

#include <vector>

#include "arch/gpu_config.h"
#include "tensor/types.h"

namespace tcsim {

/** Timing of one HMMA group configuration. */
struct HmmaTiming
{
    /** Cycles between successive HMMA issues of a group. */
    int issue_interval = 2;
    /** completion_offset[i]: cycles from the group's first issue to
     *  the completion of the i-th HMMA (cumulative clocks of
     *  Fig 9 / Table I, interpolated within Turing sets). */
    std::vector<int> completion_offsets;

    int group_size() const
    {
        return static_cast<int>(completion_offsets.size());
    }
    /** Latency of the whole wmma.mma group. */
    int group_latency() const { return completion_offsets.back(); }
    /** Cycles the tensor core pair is occupied per group. */
    int group_occupancy() const { return issue_interval * group_size(); }
};

/**
 * Timing for (arch, mode, shape).  Volta supports 16x16x16 only; the
 * Turing tables follow Table I ("16Bit (FP32 Acc)" = kMixed,
 * "16Bit (FP16 Acc)" = kFp16, "8Bit" = kInt8, "4Bit" = kInt4).
 */
const HmmaTiming& hmma_timing(Arch arch, TcMode mode, TileShape shape);

/** Table I row: average cumulative clock cycles after each SET. */
std::vector<int> turing_set_cumulative_cycles(TcMode mode, TileShape shape);

/** Volta Fig 9 cumulative clock cycle sequences. */
std::vector<int> volta_cumulative_cycles(TcMode mode);

}  // namespace tcsim
