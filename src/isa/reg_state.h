#pragma once
/**
 * @file
 * Functional register state of one warp: 32 lanes x N 32-bit
 * registers.  Used by the functional models (HMMA executor, memory
 * instructions) when functional simulation is enabled.
 */

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "fp16/half.h"
#include "sim/snapshot_io.h"
#include "tensor/types.h"

namespace tcsim {

/** Per-warp architectural register file contents. */
class WarpRegState
{
  public:
    explicit WarpRegState(int num_regs = 64)
        : num_regs_(num_regs),
          bits_(static_cast<size_t>(num_regs) * kWarpSize, 0)
    {
    }

    int num_regs() const { return num_regs_; }

    uint32_t read(int lane, int reg) const
    {
        return bits_[index(lane, reg)];
    }

    void write(int lane, int reg, uint32_t value)
    {
        bits_[index(lane, reg)] = value;
    }

    float read_f32(int lane, int reg) const
    {
        uint32_t v = read(lane, reg);
        float f;
        static_assert(sizeof(f) == sizeof(v));
        __builtin_memcpy(&f, &v, sizeof(f));
        return f;
    }

    void write_f32(int lane, int reg, float f)
    {
        uint32_t v;
        __builtin_memcpy(&v, &f, sizeof(v));
        write(lane, reg, v);
    }

    /** Read packed half @p hi (0 = low 16 bits, 1 = high). */
    half read_h16(int lane, int reg, int hi) const
    {
        uint32_t v = read(lane, reg);
        return half::from_bits(static_cast<uint16_t>(hi ? v >> 16 : v));
    }

    void write_h16(int lane, int reg, int hi, half h)
    {
        uint32_t v = read(lane, reg);
        if (hi)
            v = (v & 0x0000ffffu) | (static_cast<uint32_t>(h.bits()) << 16);
        else
            v = (v & 0xffff0000u) | h.bits();
        write(lane, reg, v);
    }

    /** Read packed signed byte @p idx (0..3). */
    int8_t read_i8(int lane, int reg, int idx) const
    {
        uint32_t v = read(lane, reg);
        return static_cast<int8_t>((v >> (8 * idx)) & 0xffu);
    }

    void write_i8(int lane, int reg, int idx, int8_t b)
    {
        uint32_t v = read(lane, reg);
        uint32_t mask = 0xffu << (8 * idx);
        v = (v & ~mask) | ((static_cast<uint32_t>(b) & 0xffu) << (8 * idx));
        write(lane, reg, v);
    }

    /** Read packed signed 4-bit nibble @p idx (0..7), sign extended. */
    int read_i4(int lane, int reg, int idx) const
    {
        uint32_t v = read(lane, reg);
        int raw = static_cast<int>((v >> (4 * idx)) & 0xfu);
        return raw >= 8 ? raw - 16 : raw;
    }

    void write_i4(int lane, int reg, int idx, int value)
    {
        TCSIM_CHECK(value >= -8 && value <= 7);
        uint32_t v = read(lane, reg);
        uint32_t mask = 0xfu << (4 * idx);
        v = (v & ~mask) | ((static_cast<uint32_t>(value) & 0xfu) << (4 * idx));
        write(lane, reg, v);
    }

    /** Snapshot support: the raw register-file image. */
    void save_state(SnapshotWriter& w) const
    {
        w.i32(num_regs_);
        w.bytes(bits_.data(), bits_.size() * sizeof(uint32_t));
    }

    void load_state(SnapshotReader& r)
    {
        num_regs_ = r.i32();
        bits_.assign(static_cast<size_t>(num_regs_) * kWarpSize, 0);
        r.bytes(bits_.data(), bits_.size() * sizeof(uint32_t));
    }

  private:
    size_t index(int lane, int reg) const
    {
        TCSIM_CHECK(lane >= 0 && lane < kWarpSize);
        TCSIM_CHECK(reg >= 0 && reg < num_regs_);
        return static_cast<size_t>(reg) * kWarpSize + lane;
    }

    int num_regs_;
    std::vector<uint32_t> bits_;
};

}  // namespace tcsim
