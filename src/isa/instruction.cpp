#include "isa/instruction.h"

#include <sstream>

#include "common/logging.h"

namespace tcsim {

const char*
opcode_name(Opcode op)
{
    switch (op) {
      case Opcode::kHmma: return "HMMA";
      case Opcode::kLdg: return "LDG";
      case Opcode::kStg: return "STG";
      case Opcode::kLds: return "LDS";
      case Opcode::kSts: return "STS";
      case Opcode::kFfma: return "FFMA";
      case Opcode::kHfma2: return "HFMA2";
      case Opcode::kFadd: return "FADD";
      case Opcode::kIadd: return "IADD";
      case Opcode::kImad: return "IMAD";
      case Opcode::kMov: return "MOV";
      case Opcode::kCs2r: return "CS2R";
      case Opcode::kBarSync: return "BAR.SYNC";
      case Opcode::kNop: return "NOP";
      case Opcode::kLoopBegin: return "LOOP.BEGIN";
      case Opcode::kLoopEnd: return "LOOP.END";
      case Opcode::kExit: return "EXIT";
    }
    return "?";
}

bool
is_memory_opcode(Opcode op)
{
    return op == Opcode::kLdg || op == Opcode::kStg || op == Opcode::kLds ||
           op == Opcode::kSts;
}

const char*
macro_class_name(MacroClass mc)
{
    switch (mc) {
      case MacroClass::kNone: return "none";
      case MacroClass::kWmmaLoadA: return "wmma.load.a";
      case MacroClass::kWmmaLoadB: return "wmma.load.b";
      case MacroClass::kWmmaLoadC: return "wmma.load.c";
      case MacroClass::kWmmaMma: return "wmma.mma";
      case MacroClass::kWmmaStoreD: return "wmma.store.d";
    }
    return "?";
}

Instruction::Instruction(const Instruction& other)
    : op(other.op), dst(other.dst), n_dst(other.n_dst), src(other.src),
      n_src(other.n_src), width_bits(other.width_bits), imm(other.imm),
      loop_stride(other.loop_stride), ping_pong(other.ping_pong),
      hmma(other.hmma), macro_id(other.macro_id),
      macro_class(other.macro_class), macro_end(other.macro_end)
{
    if (other.addr)
        addr = std::make_unique<std::array<uint64_t, kWarpSize>>(*other.addr);
}

Instruction&
Instruction::operator=(const Instruction& other)
{
    if (this == &other)
        return *this;
    op = other.op;
    dst = other.dst;
    n_dst = other.n_dst;
    src = other.src;
    n_src = other.n_src;
    width_bits = other.width_bits;
    imm = other.imm;
    loop_stride = other.loop_stride;
    ping_pong = other.ping_pong;
    hmma = other.hmma;
    macro_id = other.macro_id;
    macro_class = other.macro_class;
    macro_end = other.macro_end;
    addr = other.addr
               ? std::make_unique<std::array<uint64_t, kWarpSize>>(*other.addr)
               : nullptr;
    return *this;
}

std::string
Instruction::disasm() const
{
    std::ostringstream out;
    if (op == Opcode::kHmma) {
        // e.g. HMMA.884.F32.F32.STEP2 R4, R24, R22, R4
        out << "HMMA.884.";
        if (hmma.mode == TcMode::kMixed)
            out << "F32.F32";
        else if (hmma.mode == TcMode::kFp16)
            out << "F16.F16";
        else if (hmma.mode == TcMode::kInt8)
            out << "I32.I8";
        else
            out << "I32.I4";
        out << ".SET" << int(hmma.set);
        out << ".STEP" << int(hmma.step);
        out << " R" << int(hmma.d_reg) << ", R" << int(hmma.a_reg) << ", R"
            << int(hmma.b_reg) << ", R" << int(hmma.c_reg);
        return out.str();
    }
    out << opcode_name(op);
    if (is_memory_opcode(op) && width_bits)
        out << "." << width_bits;
    if (op == Opcode::kLoopBegin)
        out << " x" << imm;
    bool first = true;
    for (int i = 0; i < n_dst; ++i) {
        out << (first ? " " : ", ") << "R" << int(dst[i]);
        first = false;
    }
    for (int i = 0; i < n_src; ++i) {
        out << (first ? " " : ", ") << "R" << int(src[i]);
        first = false;
    }
    return out.str();
}

}  // namespace tcsim
