#pragma once
/**
 * @file
 * Warp-level machine instruction representation.
 *
 * The simulator is trace-driven: kernels (src/kernels, src/cutlass)
 * emit per-warp instruction sequences in a SASS-like IR.  The IR
 * preserves what the paper's model consumes: opcode class, register
 * operands (register *pairs* for HMMA, Section III-C), per-thread
 * addresses for memory operations, and the set/step annotations of
 * HMMA instructions.
 *
 * Traces support one non-nested loop region (kLoopBegin/kLoopEnd)
 * so GEMM K-loops need not be unrolled; memory instructions inside
 * the loop advance their addresses by `loop_stride` bytes per
 * iteration plus `ping_pong` bytes on odd iterations (double
 * buffering).
 */

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_config.h"
#include "tensor/types.h"

namespace tcsim {

/** Opcode classes modeled by the simulator. */
enum class Opcode : uint8_t {
    kHmma,     ///< Tensor core matrix-multiply-accumulate step.
    kLdg,      ///< Global memory load.
    kStg,      ///< Global memory store.
    kLds,      ///< Shared memory load.
    kSts,      ///< Shared memory store.
    kFfma,     ///< FP32 fused multiply-add (SIMT).
    kHfma2,    ///< Packed FP16x2 multiply-add (SIMT).
    kFadd,     ///< FP32 add.
    kIadd,     ///< Integer add (address arithmetic etc.).
    kImad,     ///< Integer multiply-add.
    kMov,      ///< Register move / immediate load.
    kCs2r,     ///< Read special register (e.g. SR_CLOCKLO); Fig 6.
    kBarSync,  ///< CTA-wide barrier (__syncthreads / wmma implicit).
    kNop,      ///< No operation (used by the NOP-patching microbench).
    kLoopBegin,///< Start of the trace's loop region (imm = trip count).
    kLoopEnd,  ///< End of the loop region.
    kExit,     ///< Warp termination.
};

const char* opcode_name(Opcode op);

/** True for LDG/STG/LDS/STS. */
bool is_memory_opcode(Opcode op);

/** Which macro WMMA operation a micro-instruction belongs to,
 *  for per-instruction latency profiling (Figs 15/16). */
enum class MacroClass : uint8_t {
    kNone,
    kWmmaLoadA,
    kWmmaLoadB,
    kWmmaLoadC,
    kWmmaMma,
    kWmmaStoreD,
};

const char* macro_class_name(MacroClass mc);

/** HMMA-specific fields (valid when op == kHmma). */
struct HmmaInfo
{
    TcMode mode = TcMode::kMixed;
    TileShape shape = kShape16x16x16;
    /** Storage layouts the A/B fragments were loaded with; the
     *  functional executor needs them because per-thread element
     *  ownership depends on the load pattern (Fig 7a). */
    Layout a_layout = Layout::kRowMajor;
    Layout b_layout = Layout::kRowMajor;
    uint8_t set = 0;   ///< 0-based set index.
    uint8_t step = 0;  ///< 0-based step index (always 0 on Turing).
    bool first_in_group = false;  ///< First HMMA of the wmma.mma.
    bool last_in_group = false;   ///< Last HMMA; releases D registers.
    /** Base registers of the four operand fragments (A, B, C, D). */
    uint8_t a_reg = 0, b_reg = 0, c_reg = 0, d_reg = 0;
    /** Registers per thread occupied by each fragment (scoreboard
     *  range extents). */
    uint8_t a_nregs = 8, b_nregs = 8, c_nregs = 8, d_nregs = 8;
};

/**
 * One warp-wide instruction.
 *
 * Register identifiers are uniform across the 32 lanes (as in SASS).
 * Memory instructions carry per-lane byte addresses.
 */
struct Instruction
{
    Opcode op = Opcode::kNop;

    /** Destination registers (count in n_dst). */
    std::array<uint8_t, 2> dst{};
    uint8_t n_dst = 0;
    /** Source registers (count in n_src). */
    std::array<uint8_t, 6> src{};
    uint8_t n_src = 0;

    /** Memory access width per thread, bits (memory ops). */
    uint16_t width_bits = 0;
    /** Immediate operand (MOV with n_src == 0; kLoopBegin trip count). */
    uint32_t imm = 0;

    /** Per-iteration address advance for memory ops inside the loop
     *  region, bytes. */
    int64_t loop_stride = 0;
    /** Extra advance on odd iterations (double buffering), bytes. */
    int64_t ping_pong = 0;

    /** Per-lane addresses (memory ops only; null otherwise).
     *  UINT64_MAX marks an inactive lane. */
    std::unique_ptr<std::array<uint64_t, kWarpSize>> addr;

    /** HMMA decoration (valid when op == kHmma). */
    HmmaInfo hmma;

    /** Macro-op id for latency profiling; 0 = not part of a macro. */
    uint32_t macro_id = 0;
    MacroClass macro_class = MacroClass::kNone;
    /** Last micro-instruction of its macro op. */
    bool macro_end = false;

    Instruction() = default;
    Instruction(const Instruction& other);
    Instruction& operator=(const Instruction& other);
    Instruction(Instruction&&) = default;
    Instruction& operator=(Instruction&&) = default;

    /** Effective address of @p lane at loop iteration @p iter. */
    uint64_t effective_addr(int lane, int iter) const
    {
        uint64_t a = (*addr)[lane];
        if (a == UINT64_MAX)
            return a;
        return a + static_cast<uint64_t>(loop_stride * iter) +
               static_cast<uint64_t>(ping_pong * (iter & 1));
    }

    /** Disassembly-style rendering for debugging and the
     *  microbenchmark replay tooling. */
    std::string disasm() const;

    bool reads_memory() const { return op == Opcode::kLdg || op == Opcode::kLds; }
    bool writes_memory() const { return op == Opcode::kStg || op == Opcode::kSts; }
    bool is_shared_space() const { return op == Opcode::kLds || op == Opcode::kSts; }
};

/** A warp's full instruction trace. */
using WarpProgram = std::vector<Instruction>;

/** Inactive-lane marker for Instruction::addr entries. */
inline constexpr uint64_t kNoAddr = UINT64_MAX;

}  // namespace tcsim
