#pragma once
/**
 * @file
 * WarpBuilder: the device-code DSL kernels use to emit per-warp
 * instruction traces.  Provides both raw SASS-level emitters and the
 * CUDA WMMA API level (load_matrix_sync / mma_sync /
 * store_matrix_sync), which expand exactly as Section III-C observed:
 * wmma.load/store into LD/ST groups, wmma.mma into HMMA groups.
 */

#include <array>
#include <cstdint>

#include "arch/gpu_config.h"
#include "isa/instruction.h"
#include "sass/hmma_decomposer.h"
#include "tensor/types.h"

namespace tcsim {

/** Builds one warp's instruction trace. */
class WarpBuilder
{
  public:
    explicit WarpBuilder(Arch arch) : arch_(arch) {}

    // ---- WMMA API (warp-level matrix operations) ----

    /**
     * load_matrix_sync: load the @p op fragment of a tile whose (0,0)
     * element lives at byte address @p tile_addr in a matrix with
     * leading dimension @p ld_elems stored in @p layout.
     * @p shared selects shared-memory (LDS) vs global (LDG) accesses.
     * @p loop_stride / @p ping_pong advance the address per loop
     * iteration (see Instruction).
     */
    void wmma_load(WmmaOperand op, TcMode mode, TileShape shape,
                   Layout layout, uint8_t base_reg, uint64_t tile_addr,
                   int ld_elems, bool shared, int64_t loop_stride = 0,
                   int64_t ping_pong = 0);

    /** mma_sync: D = A x B + C on register fragments. */
    void wmma_mma(TcMode mode, TileShape shape, const WmmaRegs& regs,
                  Layout a_layout, Layout b_layout);

    /** store_matrix_sync for the D fragment. */
    void wmma_store(TcMode mode, TileShape shape, Layout layout,
                    uint8_t base_reg, uint64_t tile_addr, int ld_elems,
                    bool shared, int64_t loop_stride = 0,
                    int64_t ping_pong = 0);

    // ---- Raw emitters ----

    /** Warp-wide memory instruction with explicit per-lane addresses. */
    void mem(Opcode op, uint8_t reg, int width_bits,
             const std::array<uint64_t, kWarpSize>& addrs,
             int64_t loop_stride = 0, int64_t ping_pong = 0,
             MacroClass mc = MacroClass::kNone, bool macro_end = false);

    void ffma(uint8_t d, uint8_t a, uint8_t b, uint8_t c);
    void hfma2(uint8_t d, uint8_t a, uint8_t b, uint8_t c);
    void iadd(uint8_t d, uint8_t a, uint8_t b);
    void mov_imm(uint8_t d, uint32_t imm);
    void cs2r(uint8_t d);
    void bar();
    void nop();

    /** Open the trace's single loop region (@p trips >= 1). */
    void loop_begin(int trips);
    void loop_end();

    /** Terminate the warp and return the finished trace. */
    WarpProgram take();

    Arch arch() const { return arch_; }

  private:
    uint32_t next_macro_id() { return next_macro_++; }

    Arch arch_;
    WarpProgram prog_;
    uint32_t next_macro_ = 1;
    bool in_loop_ = false;
    bool had_loop_ = false;
};

}  // namespace tcsim
