#pragma once
/**
 * @file
 * Cooperative global->shared staging of operand blocks, shared by the
 * WMMA GEMM kernels and the mini-CUTLASS templates.
 */

#include <cstdint>

#include "kernels/kernel_builder.h"
#include "tensor/types.h"

namespace tcsim {

/** Parameters of one cooperative block copy. */
struct StageBlockParams
{
    uint64_t block_base = 0;   ///< Global byte address of block (0,0).
    Layout layout = Layout::kRowMajor;
    int ld_global = 0;         ///< Global leading dimension (elements).
    int rows = 0, cols = 0;    ///< Block extent.
    int warp = 0;              ///< This warp's id within the CTA.
    int num_warps = 1;
    uint64_t shared_base = 0;  ///< Shared byte offset of the block copy.
    int64_t k_stride = 0;      ///< Global address advance per loop iter.
    int64_t ping_pong = 0;     ///< Shared-address toggle (double buffer).
    int ebytes = 2;
    uint8_t reg = 0;           ///< First staging register (uses reg..reg+7).
    int pad = 0;               ///< Padding elements per run in shared.
};

/**
 * Emit the LDG+STS pairs copying the block; splits into multiple
 * <=16-byte chunks per lane when the per-lane share exceeds one
 * 128-bit access.  The shared copy keeps the global storage order
 * with each run padded by `pad` elements.
 */
void stage_block(WarpBuilder* b, const StageBlockParams& p);

/**
 * Split emission for software pipelining: `stage_block_ldg` emits
 * only the global loads into the staging registers and
 * `stage_block_sts` only the shared stores, so compute instructions
 * can be scheduled between them (the LDG latency is then hidden by
 * the math instead of stalling the in-order warp at the STS).
 */
void stage_block_ldg(WarpBuilder* b, const StageBlockParams& p);
void stage_block_sts(WarpBuilder* b, const StageBlockParams& p);

/** Shared-memory bytes occupied by a staged block (with padding). */
uint32_t staged_block_bytes(Layout layout, int rows, int cols, int ebytes,
                            int pad);

}  // namespace tcsim
