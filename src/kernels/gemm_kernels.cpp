#include "kernels/gemm_kernels.h"

#include "common/logging.h"
#include "kernels/kernel_builder.h"
#include "sass/hmma_decomposer.h"
#include "tensor/transactions.h"

namespace tcsim {

namespace {

/** K-loop address stride (bytes) for an operand tile walking the K
 *  dimension in 16-element chunks. */
int64_t
k_stride_bytes(WmmaOperand op, Layout layout, int ld, int ebytes,
               int kchunk = 16)
{
    if (op == WmmaOperand::kA) {
        // A(m0, k): k advances along columns.
        return layout == Layout::kRowMajor
                   ? static_cast<int64_t>(kchunk) * ebytes
                   : static_cast<int64_t>(kchunk) * ld * ebytes;
    }
    // B(k, n0): k advances along rows.
    return layout == Layout::kRowMajor
               ? static_cast<int64_t>(kchunk) * ld * ebytes
               : static_cast<int64_t>(kchunk) * ebytes;
}

/**
 * Emit a cooperative global -> shared copy of a (rows x cols) block.
 * The block keeps its global storage layout in shared memory and is
 * packed with leading dimension = run length.  Each lane moves
 * `total / (warps * 32)` contiguous elements with one LDG + one STS.
 */
void
stage_block(WarpBuilder* b, uint64_t block_base, Layout layout, int ld_global,
            int rows, int cols, int warp, int num_warps,
            uint64_t shared_base, int64_t k_stride, int ebytes, uint8_t reg,
            int pad = 0)
{
    const int total = rows * cols;
    const int run_len = layout == Layout::kRowMajor ? cols : rows;
    const int per_lane = total / (num_warps * kWarpSize);
    TCSIM_CHECK(per_lane >= 1);
    TCSIM_CHECK(run_len % per_lane == 0);
    TCSIM_CHECK(per_lane * ebytes <= 16);

    std::array<uint64_t, kWarpSize> gaddr{};
    std::array<uint64_t, kWarpSize> saddr{};
    for (int lane = 0; lane < kWarpSize; ++lane) {
        int chunk = (warp * kWarpSize + lane) * per_lane;
        int run = chunk / run_len;
        int off = chunk % run_len;
        int r = layout == Layout::kRowMajor ? run : off;
        int c = layout == Layout::kRowMajor ? off : run;
        gaddr[lane] =
            block_base +
            static_cast<uint64_t>(layout == Layout::kRowMajor
                                      ? static_cast<int64_t>(r) * ld_global + c
                                      : static_cast<int64_t>(c) * ld_global +
                                            r) *
                ebytes;
        // Shared copy keeps the storage order but pads each run by
        // `pad` elements to spread banks (standard conflict avoidance).
        saddr[lane] = shared_base +
                      static_cast<uint64_t>(run * (run_len + pad) + off) *
                          ebytes;
    }
    int width = per_lane * ebytes * 8;
    b->mem(Opcode::kLdg, reg, width, gaddr, k_stride);
    b->mem(Opcode::kSts, reg, width, saddr);
}

/**
 * Builder fingerprint for the replay cache: every parameter the
 * generated trace depends on, modulo operand base addresses (see
 * KernelDesc::timing_key).  @p wpc is the *effective* warps-per-CTA
 * after any clamping the builder applied.
 */
std::string
gemm_timing_key(const char* family, const GemmKernelConfig& cfg, int wpc)
{
    return detail::format("%s/a%d/p%d/%dx%dx%d/l%d%d%d/w%d/f%d", family,
                          static_cast<int>(cfg.arch),
                          static_cast<int>(cfg.mode), cfg.m, cfg.n, cfg.k,
                          static_cast<int>(cfg.a_layout),
                          static_cast<int>(cfg.b_layout),
                          static_cast<int>(cfg.cd_layout), wpc,
                          cfg.functional ? 1 : 0);
}

}  // namespace

KernelDesc
make_wmma_gemm_naive(const GemmKernelConfig& cfg, const GemmBuffers& buf,
                     int warps_per_cta)
{
    TCSIM_CHECK(cfg.m % 16 == 0 && cfg.n % 16 == 0 && cfg.k % 16 == 0);
    const int tiles_m = cfg.m / 16;
    const int tiles_n = cfg.n / 16;
    const int tiles = tiles_m * tiles_n;
    const int wpc = std::min(warps_per_cta, tiles);

    const int a_ld = cfg.a_layout == Layout::kRowMajor ? cfg.k : cfg.m;
    const int b_ld = cfg.b_layout == Layout::kRowMajor ? cfg.n : cfg.k;
    const int cd_ld = cfg.cd_layout == Layout::kRowMajor ? cfg.n : cfg.m;
    const int ab_e = element_bytes(WmmaOperand::kA, cfg.mode);
    const int cd_e = element_bytes(WmmaOperand::kC, cfg.mode);

    WmmaFragRegCounts fr = wmma_fragment_regs(cfg.arch, cfg.mode,
                                              kShape16x16x16);
    const uint8_t acc_reg = 4;
    const uint8_t a_reg = static_cast<uint8_t>(acc_reg + fr.c);
    const uint8_t b_reg = static_cast<uint8_t>(a_reg + fr.a);
    const int regs = b_reg + fr.b + 4;

    KernelDesc k;
    k.name = "wmma_gemm_naive";
    k.grid_ctas = (tiles + wpc - 1) / wpc;
    k.warps_per_cta = wpc;
    k.shared_mem_bytes = 0;
    k.regs_per_thread = regs;
    k.functional = cfg.functional;
    k.timing_key = gemm_timing_key("wmma_naive", cfg, wpc);
    k.trace = [cfg, buf, wpc, tiles, tiles_n, a_ld, b_ld, cd_ld, ab_e, cd_e,
               acc_reg, a_reg, b_reg](int cta, int w) -> WarpProgram {
        WarpBuilder bld(cfg.arch);
        int t = cta * wpc + w;
        if (t >= tiles)
            return bld.take();  // idle warp (tail CTA)
        int tm = t / tiles_n;
        int tn = t % tiles_n;

        // Accumulator <- C.
        bld.wmma_load(WmmaOperand::kC, cfg.mode, kShape16x16x16,
                      cfg.cd_layout, acc_reg,
                      device_elem_addr(buf.c, cfg.cd_layout, cd_ld, tm * 16,
                                       tn * 16, cd_e),
                      cd_ld, /*shared=*/false);

        bld.loop_begin(cfg.k / 16);
        bld.wmma_load(WmmaOperand::kA, cfg.mode, kShape16x16x16, cfg.a_layout,
                      a_reg,
                      device_elem_addr(buf.a, cfg.a_layout, a_ld, tm * 16, 0,
                                       ab_e),
                      a_ld, false,
                      k_stride_bytes(WmmaOperand::kA, cfg.a_layout, a_ld,
                                     ab_e));
        bld.wmma_load(WmmaOperand::kB, cfg.mode, kShape16x16x16, cfg.b_layout,
                      b_reg,
                      device_elem_addr(buf.b, cfg.b_layout, b_ld, 0, tn * 16,
                                       ab_e),
                      b_ld, false,
                      k_stride_bytes(WmmaOperand::kB, cfg.b_layout, b_ld,
                                     ab_e));
        bld.wmma_mma(cfg.mode, kShape16x16x16,
                     WmmaRegs{.a = a_reg, .b = b_reg, .c = acc_reg,
                              .d = acc_reg},
                     cfg.a_layout, cfg.b_layout);
        bld.loop_end();

        bld.wmma_store(cfg.mode, kShape16x16x16, cfg.cd_layout, acc_reg,
                       device_elem_addr(buf.d, cfg.cd_layout, cd_ld, tm * 16,
                                        tn * 16, cd_e),
                       cd_ld, false);
        return bld.take();
    };
    return k;
}

KernelDesc
make_wmma_gemm_shared(const GemmKernelConfig& cfg, const GemmBuffers& buf)
{
    constexpr int kBm = 64, kBn = 64, kBk = 16, kWarps = 8;
    TCSIM_CHECK(cfg.m % kBm == 0 && cfg.n % kBn == 0 && cfg.k % kBk == 0);

    const int a_ld = cfg.a_layout == Layout::kRowMajor ? cfg.k : cfg.m;
    const int b_ld = cfg.b_layout == Layout::kRowMajor ? cfg.n : cfg.k;
    const int cd_ld = cfg.cd_layout == Layout::kRowMajor ? cfg.n : cfg.m;
    const int ab_e = element_bytes(WmmaOperand::kA, cfg.mode);
    const int cd_e = element_bytes(WmmaOperand::kC, cfg.mode);

    // Shared layout: A block then B block, each kept in its global
    // storage order with each run padded by 8 elements to avoid bank
    // conflicts on fragment loads.
    constexpr int kPad = 8;
    const int a_runs = cfg.a_layout == Layout::kRowMajor ? kBm : kBk;
    const int b_runs = cfg.b_layout == Layout::kRowMajor ? kBk : kBn;
    const int a_sld = (cfg.a_layout == Layout::kRowMajor ? kBk : kBm) + kPad;
    const int b_sld = (cfg.b_layout == Layout::kRowMajor ? kBn : kBk) + kPad;
    const uint32_t a_bytes =
        static_cast<uint32_t>(a_runs * a_sld * ab_e);
    const uint32_t b_bytes =
        static_cast<uint32_t>(b_runs * b_sld * ab_e);

    WmmaFragRegCounts fr = wmma_fragment_regs(cfg.arch, cfg.mode,
                                              kShape16x16x16);
    const uint8_t acc0 = 4;
    const uint8_t acc1 = static_cast<uint8_t>(acc0 + fr.c);
    const uint8_t a_reg = static_cast<uint8_t>(acc1 + fr.c);
    const uint8_t b0_reg = static_cast<uint8_t>(a_reg + fr.a);
    const uint8_t b1_reg = static_cast<uint8_t>(b0_reg + fr.b);
    const uint8_t stage_a = static_cast<uint8_t>(b1_reg + fr.b);
    const uint8_t stage_b = static_cast<uint8_t>(stage_a + 2);
    const int regs = stage_b + 2 + 2;

    const int grid_m = cfg.m / kBm;
    const int grid_n = cfg.n / kBn;

    KernelDesc k;
    k.name = "wmma_gemm_shared";
    k.grid_ctas = grid_m * grid_n;
    k.warps_per_cta = kWarps;
    k.shared_mem_bytes = a_bytes + b_bytes;
    k.regs_per_thread = regs;
    k.functional = cfg.functional;
    k.timing_key = gemm_timing_key("wmma_shared", cfg, kWarps);
    k.trace = [=](int cta, int w) -> WarpProgram {
        WarpBuilder bld(cfg.arch);
        const int bm = cta / grid_n;
        const int bn = cta % grid_n;
        // 4x2 warp grid over the 64x64 CTA tile: each warp computes a
        // 16x32 strip = two 16x16 accumulators.
        const int wr = w / 2;
        const int wc = w % 2;
        const int row0 = bm * kBm + wr * 16;    // global output rows
        const int col0 = bn * kBn + wc * 32;    // global output cols

        // Load C into both accumulators.
        for (int t = 0; t < 2; ++t) {
            bld.wmma_load(WmmaOperand::kC, cfg.mode, kShape16x16x16,
                          cfg.cd_layout, t == 0 ? acc0 : acc1,
                          device_elem_addr(buf.c, cfg.cd_layout, cd_ld, row0,
                                           col0 + 16 * t, cd_e),
                          cd_ld, false);
        }

        bld.loop_begin(cfg.k / kBk);

        // Stage A (64 x 16) and B (16 x 64) blocks into shared memory.
        stage_block(&bld,
                    device_elem_addr(buf.a, cfg.a_layout, a_ld, bm * kBm, 0,
                                     ab_e),
                    cfg.a_layout, a_ld, kBm, kBk, w, kWarps, /*shared=*/0,
                    k_stride_bytes(WmmaOperand::kA, cfg.a_layout, a_ld, ab_e,
                                   kBk),
                    ab_e, stage_a, kPad);
        stage_block(&bld,
                    device_elem_addr(buf.b, cfg.b_layout, b_ld, 0, bn * kBn,
                                     ab_e),
                    cfg.b_layout, b_ld, kBk, kBn, w, kWarps, a_bytes,
                    k_stride_bytes(WmmaOperand::kB, cfg.b_layout, b_ld, ab_e,
                                   kBk),
                    ab_e, stage_b, kPad);
        bld.bar();

        // Fragment loads from shared (block-local coordinates).
        bld.wmma_load(WmmaOperand::kA, cfg.mode, kShape16x16x16, cfg.a_layout,
                      a_reg,
                      device_elem_addr(0, cfg.a_layout, a_sld, wr * 16, 0,
                                       ab_e),
                      a_sld, /*shared=*/true);
        for (int t = 0; t < 2; ++t) {
            bld.wmma_load(WmmaOperand::kB, cfg.mode, kShape16x16x16,
                          cfg.b_layout, t == 0 ? b0_reg : b1_reg,
                          device_elem_addr(a_bytes, cfg.b_layout, b_sld, 0,
                                           wc * 32 + 16 * t, ab_e),
                          b_sld, true);
            bld.wmma_mma(cfg.mode, kShape16x16x16,
                         WmmaRegs{.a = a_reg,
                                  .b = t == 0 ? b0_reg : b1_reg,
                                  .c = t == 0 ? acc0 : acc1,
                                  .d = t == 0 ? acc0 : acc1},
                         cfg.a_layout, cfg.b_layout);
        }
        bld.bar();
        bld.loop_end();

        for (int t = 0; t < 2; ++t) {
            bld.wmma_store(cfg.mode, kShape16x16x16, cfg.cd_layout,
                           t == 0 ? acc0 : acc1,
                           device_elem_addr(buf.d, cfg.cd_layout, cd_ld, row0,
                                            col0 + 16 * t, cd_e),
                           cd_ld, false);
        }
        return bld.take();
    };
    return k;
}

namespace {

/** Shared FFMA/HFMA2 GEMM skeleton; @p half2 selects packed FP16. */
KernelDesc
make_simt_gemm(const GemmKernelConfig& cfg, const GemmBuffers& buf,
               bool half2)
{
    constexpr int kBm = 64, kBn = 64, kBk = 16, kWarps = 8;
    TCSIM_CHECK(cfg.m % kBm == 0 && cfg.n % kBn == 0 && cfg.k % kBk == 0);
    const int e = half2 ? 2 : 4;
    const int a_ld = cfg.a_layout == Layout::kRowMajor ? cfg.k : cfg.m;
    const int b_ld = cfg.b_layout == Layout::kRowMajor ? cfg.n : cfg.k;

    const uint32_t a_bytes = kBm * kBk * static_cast<uint32_t>(e);
    const uint32_t b_bytes = kBk * kBn * static_cast<uint32_t>(e);

    // Registers: 16 accumulators + 4 a + 4 b + staging.
    const uint8_t acc = 4, areg = 20, breg = 24, stage = 28;

    const int grid_m = cfg.m / kBm;
    const int grid_n = cfg.n / kBn;

    KernelDesc k;
    k.name = half2 ? "hgemm_hfma2" : "sgemm_ffma";
    k.grid_ctas = grid_m * grid_n;
    k.warps_per_cta = kWarps;
    k.shared_mem_bytes = a_bytes + b_bytes;
    k.regs_per_thread = 48;
    k.functional = false;  // timing-only baseline
    k.timing_key = gemm_timing_key(k.name.c_str(), cfg, kWarps);
    k.trace = [=](int cta, int w) -> WarpProgram {
        WarpBuilder bld(cfg.arch);
        const int bm = cta / grid_n;
        const int bn = cta % grid_n;

        bld.loop_begin(cfg.k / kBk);
        stage_block(&bld,
                    device_elem_addr(buf.a, cfg.a_layout, a_ld, bm * kBm, 0,
                                     e),
                    cfg.a_layout, a_ld, kBm, kBk, w, kWarps, 0,
                    k_stride_bytes(WmmaOperand::kA, cfg.a_layout, a_ld, e,
                                   kBk),
                    e, stage);
        stage_block(&bld,
                    device_elem_addr(buf.b, cfg.b_layout, b_ld, 0, bn * kBn,
                                     e),
                    cfg.b_layout, b_ld, kBk, kBn, w, kWarps, a_bytes,
                    k_stride_bytes(WmmaOperand::kB, cfg.b_layout, b_ld, e,
                                   kBk),
                    e, stage + 2);
        bld.bar();

        // Per k-step operand fetches + MACs.  Each thread owns a 4x4
        // output block (warp = 16x32 region); with half2 each HFMA2
        // covers two packed MACs.
        for (int kk = 0; kk < kBk; ++kk) {
            std::array<uint64_t, kWarpSize> aaddr{};
            std::array<uint64_t, kWarpSize> baddr{};
            for (int lane = 0; lane < kWarpSize; ++lane) {
                int lr = (lane / 8) * 4;
                int lc = (lane % 8) * 4;
                aaddr[lane] = static_cast<uint64_t>(
                    ((w / 2) * 16 + lr) * kBk + kk) * e;
                baddr[lane] = a_bytes + static_cast<uint64_t>(
                    kk * kBn + (w % 2) * 32 + lc) * e;
            }
            bld.mem(Opcode::kLds, areg, 64, aaddr);
            bld.mem(Opcode::kLds, breg, 64, baddr);
            const int macs = half2 ? 8 : 16;
            for (int i = 0; i < macs; ++i) {
                uint8_t d = static_cast<uint8_t>(acc + i % 16);
                if (half2)
                    bld.hfma2(d, areg + i % 4, breg + i / 4, d);
                else
                    bld.ffma(d, areg + i % 4, breg + i / 4, d);
            }
        }
        bld.bar();
        bld.loop_end();

        // Epilogue: store the 16 accumulators (one STG.128 x4 per
        // thread equivalent).
        std::array<uint64_t, kWarpSize> daddr{};
        for (int r = 0; r < 4; ++r) {
            for (int lane = 0; lane < kWarpSize; ++lane) {
                int lr = (lane / 8) * 4 + r;
                int lc = (lane % 8) * 4;
                daddr[lane] = device_elem_addr(
                    buf.d, Layout::kRowMajor, cfg.n, bm * kBm + (w / 2) * 16 +
                    lr, bn * kBn + (w % 2) * 32 + lc, e);
            }
            bld.mem(Opcode::kStg, static_cast<uint8_t>(acc + 4 * r),
                    32 * (half2 ? 2 : 4), daddr);
        }
        return bld.take();
    };
    return k;
}

}  // namespace

KernelDesc
make_sgemm_ffma(const GemmKernelConfig& cfg, const GemmBuffers& buf)
{
    return make_simt_gemm(cfg, buf, false);
}

KernelDesc
make_hgemm_hfma2(const GemmKernelConfig& cfg, const GemmBuffers& buf)
{
    return make_simt_gemm(cfg, buf, true);
}

KernelDesc
make_hmma_stress(Arch arch, TcMode mode, int ctas, int warps_per_cta,
                 int wmma_per_warp, int accumulators)
{
    TCSIM_CHECK(accumulators >= 1 && accumulators <= 4);
    TCSIM_CHECK(wmma_per_warp % accumulators == 0);
    WmmaFragRegCounts fr = wmma_fragment_regs(arch, mode, kShape16x16x16);

    KernelDesc k;
    k.name = "hmma_stress";
    k.grid_ctas = ctas;
    k.warps_per_cta = warps_per_cta;
    k.regs_per_thread = 8 + fr.a + fr.b + 4 * fr.c;
    k.functional = false;
    k.timing_key = detail::format("hmma_stress/a%d/p%d/c%d/w%d/n%d/acc%d",
                                  static_cast<int>(arch),
                                  static_cast<int>(mode), ctas,
                                  warps_per_cta, wmma_per_warp, accumulators);
    k.trace = [=](int, int) -> WarpProgram {
        WarpBuilder bld(arch);
        const uint8_t a_reg = 8;
        const uint8_t b_reg = static_cast<uint8_t>(a_reg + fr.a);
        const uint8_t acc0 = static_cast<uint8_t>(b_reg + fr.b);
        bld.loop_begin(wmma_per_warp / accumulators);
        for (int j = 0; j < accumulators; ++j) {
            uint8_t acc = static_cast<uint8_t>(acc0 + j * fr.c);
            bld.wmma_mma(mode, kShape16x16x16,
                         WmmaRegs{.a = a_reg, .b = b_reg, .c = acc, .d = acc},
                         Layout::kRowMajor, Layout::kColMajor);
        }
        bld.loop_end();
        return bld.take();
    };
    return k;
}

}  // namespace tcsim
