#pragma once
/**
 * @file
 * Host-side GEMM problem setup: allocates operand matrices in
 * simulated device memory, uploads deterministic pseudo-random data,
 * and verifies simulated results against the host reference.
 */

#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "sim/mem/global_memory.h"
#include "tensor/matrix.h"

namespace tcsim {

/** Device addresses of the four GEMM operands. */
struct GemmBuffers
{
    uint64_t a = 0;
    uint64_t b = 0;
    uint64_t c = 0;
    uint64_t d = 0;
};

/** Deterministic small pseudo-random half in [-2, 2). */
inline half
gemm_test_value(uint32_t seed)
{
    seed = seed * 1664525u + 1013904223u;
    return half(static_cast<float>((seed >> 8) % 1024) / 256.0f - 2.0f);
}

/**
 * A D = A x B + C problem with FP16 inputs and Acc accumulators
 * (float = mixed precision, half = FP16 mode).
 */
template <typename Acc>
class GemmProblem
{
  public:
    GemmProblem(int m, int n, int k, Layout a_layout, Layout b_layout,
                Layout cd_layout = Layout::kRowMajor)
        : m_(m), n_(n), k_(k), a_(m, k, a_layout), b_(k, n, b_layout),
          c_(m, n, cd_layout)
    {
        a_.fill([&](int r, int c) {
            return gemm_test_value(static_cast<uint32_t>(r * k_ + c));
        });
        b_.fill([&](int r, int c) {
            return gemm_test_value(static_cast<uint32_t>(7777 + r * n_ + c));
        });
        c_.fill([](int r, int c) {
            return Acc(0.0625f * static_cast<float>((r - c) % 16));
        });
    }

    /** Allocate and upload operands; D is allocated zeroed. */
    GemmBuffers upload(GlobalMemory* mem) const
    {
        GemmBuffers buf;
        buf.a = mem->alloc(a_.size_bytes());
        buf.b = mem->alloc(b_.size_bytes());
        buf.c = mem->alloc(c_.size_bytes());
        buf.d = mem->alloc(c_.size_bytes());
        mem->write(buf.a, a_.data(), a_.size_bytes());
        mem->write(buf.b, b_.data(), b_.size_bytes());
        mem->write(buf.c, c_.data(), c_.size_bytes());
        return buf;
    }

    /** Max |D - ref| / (1 + |ref|) over all elements. */
    double verify(const GlobalMemory& mem, uint64_t d_addr) const
    {
        HostMatrix<Acc> d(m_, n_, c_.layout());
        mem.read(d_addr, d.data(), d.size_bytes());
        HostMatrix<Acc> ref(m_, n_, c_.layout());
        reference_gemm(a_, b_, c_, ref);
        double worst = 0.0;
        for (int r = 0; r < m_; ++r) {
            for (int cc = 0; cc < n_; ++cc) {
                double got = static_cast<float>(d.at(r, cc));
                double want = static_cast<float>(ref.at(r, cc));
                double err = std::abs(got - want) / (1.0 + std::abs(want));
                worst = std::max(worst, err);
            }
        }
        return worst;
    }

    int m() const { return m_; }
    int n() const { return n_; }
    int k() const { return k_; }
    double flops() const { return 2.0 * m_ * n_ * k_; }

    const HostMatrix<half>& a() const { return a_; }
    const HostMatrix<half>& b() const { return b_; }
    const HostMatrix<Acc>& c() const { return c_; }

  private:
    int m_, n_, k_;
    HostMatrix<half> a_;
    HostMatrix<half> b_;
    HostMatrix<Acc> c_;
};

/** Byte address of element (r, c) of a device matrix. */
inline uint64_t
device_elem_addr(uint64_t base, Layout layout, int ld, int r, int c,
                 int ebytes)
{
    int64_t idx = layout == Layout::kRowMajor
                      ? static_cast<int64_t>(r) * ld + c
                      : static_cast<int64_t>(c) * ld + r;
    return base + static_cast<uint64_t>(idx) * ebytes;
}

}  // namespace tcsim
