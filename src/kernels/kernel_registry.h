#pragma once
/**
 * @file
 * Name-based lookup of the GEMM kernel zoo, so data-driven frontends
 * (the scenario driver, future trace replayers) can select a kernel
 * builder without compiling against each maker function.
 */

#include <string>
#include <vector>

#include "kernels/gemm_kernels.h"
#include "sim/kernel_desc.h"

namespace tcsim {

/** The kernel builders the registry can instantiate. */
enum class KernelFamily {
    kWmmaNaive,   ///< make_wmma_gemm_naive
    kWmmaShared,  ///< make_wmma_gemm_shared
    kSgemmFfma,   ///< make_sgemm_ffma
    kHgemmHfma2,  ///< make_hgemm_hfma2
    kHmmaStress,  ///< make_hmma_stress (no operand buffers)
};

/** Registry entry: stable scenario-facing name plus family traits. */
struct KernelFamilyInfo
{
    KernelFamily family;
    const char* name;
    /** GEMM-shaped family: takes m/n/k, layouts, and operand buffers.
     *  When false (hmma_stress) it takes ctas/warps/wmma_per_warp. */
    bool is_gemm;
    /** Family honours KernelDesc::functional (moves real data, so
     *  D = A x B + C can be verified).  The SIMT baselines and
     *  hmma_stress are timing-only. */
    bool supports_functional;
    /** Bytes per A/B operand element in device memory. */
    int ab_elem_bytes;
    /** Bytes per C/D element (for mode-independent families). */
    int cd_elem_bytes;
};

/** All registered families, in a stable order. */
const std::vector<KernelFamilyInfo>& kernel_families();

/** Lookup by scenario name ("wmma_shared", ...); nullptr if unknown. */
const KernelFamilyInfo* find_kernel_family(const std::string& name);

/** Comma-separated family names for error messages. */
std::string kernel_family_names();

/**
 * Build a GEMM-shaped kernel of @p family.  @p warps_per_cta is only
 * honoured by kWmmaNaive (the other families fix their CTA shape).
 */
KernelDesc build_gemm_kernel(KernelFamily family,
                             const GemmKernelConfig& cfg,
                             const GemmBuffers& buf, int warps_per_cta);

/** FLOPs of one D = A x B + C GEMM (2*m*n*k). */
double gemm_flops(int m, int n, int k);

/** FLOPs of one hmma_stress launch (per-tile 2*16*16*16 MACs). */
double hmma_stress_flops(int ctas, int warps_per_cta, int wmma_per_warp);

}  // namespace tcsim
