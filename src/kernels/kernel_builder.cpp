#include "kernels/kernel_builder.h"

#include "common/logging.h"
#include "kernels/wmma_api.h"
#include "tensor/transactions.h"

namespace tcsim {

namespace {

MacroClass
load_macro_class(WmmaOperand op)
{
    switch (op) {
      case WmmaOperand::kA: return MacroClass::kWmmaLoadA;
      case WmmaOperand::kB: return MacroClass::kWmmaLoadB;
      case WmmaOperand::kC: return MacroClass::kWmmaLoadC;
      case WmmaOperand::kD: return MacroClass::kWmmaStoreD;
    }
    return MacroClass::kNone;
}

}  // namespace

void
WarpBuilder::wmma_load(WmmaOperand op, TcMode mode, TileShape shape,
                       Layout layout, uint8_t base_reg, uint64_t tile_addr,
                       int ld_elems, bool shared, int64_t loop_stride,
                       int64_t ping_pong)
{
    const FragmentMap& map =
        cached_fragment_map(arch_, op, shape, mode, layout);
    const auto& ops = cached_memory_ops(map, ld_elems);
    const int ebytes = element_bytes(op, mode);
    const uint32_t macro = next_macro_id();
    const MacroClass mc = load_macro_class(op);

    for (size_t i = 0; i < ops.size(); ++i) {
        const MemAccessDesc& d = ops[i];
        Instruction inst;
        inst.op = shared ? Opcode::kLds : Opcode::kLdg;
        inst.width_bits = static_cast<uint16_t>(d.width_bits);
        inst.n_dst = 1;
        inst.dst[0] = static_cast<uint8_t>(base_reg +
                                           d.first_slot * ebytes / 4);
        inst.addr = std::make_unique<std::array<uint64_t, kWarpSize>>();
        for (int lane = 0; lane < kWarpSize; ++lane) {
            (*inst.addr)[lane] =
                d.lane_offset[lane] == kInactiveLane
                    ? kNoAddr
                    : tile_addr + static_cast<uint64_t>(d.lane_offset[lane]);
        }
        inst.loop_stride = loop_stride;
        inst.ping_pong = ping_pong;
        inst.macro_id = macro;
        inst.macro_class = mc;
        inst.macro_end = i + 1 == ops.size();
        prog_.push_back(std::move(inst));
    }
}

void
WarpBuilder::wmma_mma(TcMode mode, TileShape shape, const WmmaRegs& regs,
                      Layout a_layout, Layout b_layout)
{
    auto group = decompose_wmma_mma(arch_, mode, shape, regs, a_layout,
                                    b_layout, next_macro_id());
    for (auto& inst : group)
        prog_.push_back(std::move(inst));
}

void
WarpBuilder::wmma_store(TcMode mode, TileShape shape, Layout layout,
                        uint8_t base_reg, uint64_t tile_addr, int ld_elems,
                        bool shared, int64_t loop_stride, int64_t ping_pong)
{
    const FragmentMap& map =
        cached_fragment_map(arch_, WmmaOperand::kD, shape, mode, layout);
    const auto& ops = cached_memory_ops(map, ld_elems);
    const int ebytes = element_bytes(WmmaOperand::kD, mode);
    const uint32_t macro = next_macro_id();

    for (size_t i = 0; i < ops.size(); ++i) {
        const MemAccessDesc& d = ops[i];
        Instruction inst;
        inst.op = shared ? Opcode::kSts : Opcode::kStg;
        inst.width_bits = static_cast<uint16_t>(d.width_bits);
        inst.n_src = 1;
        inst.src[0] = static_cast<uint8_t>(base_reg +
                                           d.first_slot * ebytes / 4);
        inst.addr = std::make_unique<std::array<uint64_t, kWarpSize>>();
        for (int lane = 0; lane < kWarpSize; ++lane) {
            (*inst.addr)[lane] =
                d.lane_offset[lane] == kInactiveLane
                    ? kNoAddr
                    : tile_addr + static_cast<uint64_t>(d.lane_offset[lane]);
        }
        inst.loop_stride = loop_stride;
        inst.ping_pong = ping_pong;
        inst.macro_id = macro;
        inst.macro_class = MacroClass::kWmmaStoreD;
        inst.macro_end = i + 1 == ops.size();
        prog_.push_back(std::move(inst));
    }
}

void
WarpBuilder::mem(Opcode op, uint8_t reg, int width_bits,
                 const std::array<uint64_t, kWarpSize>& addrs,
                 int64_t loop_stride, int64_t ping_pong, MacroClass mc,
                 bool macro_end)
{
    TCSIM_CHECK(is_memory_opcode(op));
    Instruction inst;
    inst.op = op;
    inst.width_bits = static_cast<uint16_t>(width_bits);
    if (op == Opcode::kLdg || op == Opcode::kLds) {
        inst.n_dst = 1;
        inst.dst[0] = reg;
    } else {
        inst.n_src = 1;
        inst.src[0] = reg;
    }
    inst.addr = std::make_unique<std::array<uint64_t, kWarpSize>>(addrs);
    inst.loop_stride = loop_stride;
    inst.ping_pong = ping_pong;
    if (mc != MacroClass::kNone) {
        inst.macro_id = next_macro_id();
        inst.macro_class = mc;
        inst.macro_end = macro_end;
    }
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::ffma(uint8_t d, uint8_t a, uint8_t b, uint8_t c)
{
    Instruction inst;
    inst.op = Opcode::kFfma;
    inst.n_dst = 1;
    inst.dst[0] = d;
    inst.n_src = 3;
    inst.src[0] = a;
    inst.src[1] = b;
    inst.src[2] = c;
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::hfma2(uint8_t d, uint8_t a, uint8_t b, uint8_t c)
{
    Instruction inst;
    inst.op = Opcode::kHfma2;
    inst.n_dst = 1;
    inst.dst[0] = d;
    inst.n_src = 3;
    inst.src[0] = a;
    inst.src[1] = b;
    inst.src[2] = c;
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::iadd(uint8_t d, uint8_t a, uint8_t b)
{
    Instruction inst;
    inst.op = Opcode::kIadd;
    inst.n_dst = 1;
    inst.dst[0] = d;
    inst.n_src = 2;
    inst.src[0] = a;
    inst.src[1] = b;
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::mov_imm(uint8_t d, uint32_t imm)
{
    Instruction inst;
    inst.op = Opcode::kMov;
    inst.n_dst = 1;
    inst.dst[0] = d;
    inst.imm = imm;
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::cs2r(uint8_t d)
{
    Instruction inst;
    inst.op = Opcode::kCs2r;
    inst.n_dst = 1;
    inst.dst[0] = d;
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::bar()
{
    Instruction inst;
    inst.op = Opcode::kBarSync;
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::nop()
{
    Instruction inst;
    inst.op = Opcode::kNop;
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::loop_begin(int trips)
{
    TCSIM_CHECK(trips >= 1);
    TCSIM_CHECK(!in_loop_);
    TCSIM_CHECK(!had_loop_);  // one loop region per trace
    in_loop_ = true;
    had_loop_ = true;
    Instruction inst;
    inst.op = Opcode::kLoopBegin;
    inst.imm = static_cast<uint32_t>(trips);
    prog_.push_back(std::move(inst));
}

void
WarpBuilder::loop_end()
{
    TCSIM_CHECK(in_loop_);
    in_loop_ = false;
    Instruction inst;
    inst.op = Opcode::kLoopEnd;
    prog_.push_back(std::move(inst));
}

WarpProgram
WarpBuilder::take()
{
    TCSIM_CHECK(!in_loop_);
    Instruction inst;
    inst.op = Opcode::kExit;
    prog_.push_back(std::move(inst));
    return std::move(prog_);
}

}  // namespace tcsim
