#pragma once
/**
 * @file
 * The GEMM kernel zoo the evaluation runs on the simulator:
 *
 *  - wmma naive:   one 16x16 output tile per warp, operands streamed
 *                  from global memory (the paper's Fig 16 "w/o shared
 *                  mem" configuration).
 *  - wmma shared:  64x64 CTA tile staged through shared memory (the
 *                  paper's optimized WMMA kernel, Figs 14a/15/16).
 *  - ffma sgemm /  FP32 / packed-FP16 SIMT baselines (the
 *    hfma2 hgemm:  CUBLAS_WO_TC curves of Fig 17).
 *  - hmma stress:  register-resident back-to-back wmma.mma (the
 *                  "MAX PERF" kernel of Fig 17 and the warp-scaling
 *                  microbenchmark of Fig 12c).
 */

#include "arch/gpu_config.h"
#include "kernels/gemm_problem.h"
#include "sim/kernel_desc.h"
#include "tensor/types.h"

namespace tcsim {

/** Common GEMM kernel parameters. */
struct GemmKernelConfig
{
    Arch arch = Arch::kVolta;
    TcMode mode = TcMode::kMixed;
    int m = 256, n = 256, k = 256;
    Layout a_layout = Layout::kRowMajor;
    Layout b_layout = Layout::kRowMajor;
    Layout cd_layout = Layout::kRowMajor;
    bool functional = true;
};

/** Naive WMMA GEMM: one output tile per warp, no shared memory. */
KernelDesc make_wmma_gemm_naive(const GemmKernelConfig& cfg,
                                const GemmBuffers& buf,
                                int warps_per_cta = 8);

/** Shared-memory WMMA GEMM: 64x64 CTA tile, 8 warps, BK = 16. */
KernelDesc make_wmma_gemm_shared(const GemmKernelConfig& cfg,
                                 const GemmBuffers& buf);

/** FP32 SIMT GEMM baseline (no tensor cores). */
KernelDesc make_sgemm_ffma(const GemmKernelConfig& cfg,
                           const GemmBuffers& buf);

/** Packed FP16 SIMT GEMM baseline (no tensor cores). */
KernelDesc make_hgemm_hfma2(const GemmKernelConfig& cfg,
                            const GemmBuffers& buf);

/**
 * Register-resident HMMA stress kernel: @p wmma_per_warp back-to-back
 * mma_sync ops rotating over @p accumulators accumulator fragments.
 * Used for the Fig 12c warp-scaling microbenchmark and the Fig 17
 * MAX PERF series.
 */
KernelDesc make_hmma_stress(Arch arch, TcMode mode, int ctas,
                            int warps_per_cta, int wmma_per_warp,
                            int accumulators = 4);

}  // namespace tcsim
