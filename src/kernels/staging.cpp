#include "kernels/staging.h"

#include "common/logging.h"

namespace tcsim {

uint32_t
staged_block_bytes(Layout layout, int rows, int cols, int ebytes, int pad)
{
    int runs = layout == Layout::kRowMajor ? rows : cols;
    int run_len = layout == Layout::kRowMajor ? cols : rows;
    return static_cast<uint32_t>(runs * (run_len + pad) * ebytes);
}

namespace {

/** Chunking of the block copy across lanes/parts. */
struct StagePlan
{
    int chunk_elems;
    int parts;
    int run_len;
};

StagePlan
plan_stage(const StageBlockParams& p)
{
    const int total = p.rows * p.cols;
    const int run_len = p.layout == Layout::kRowMajor ? p.cols : p.rows;
    const int lanes_total = p.num_warps * kWarpSize;
    TCSIM_CHECK(total % lanes_total == 0);
    const int per_lane = total / lanes_total;
    TCSIM_CHECK(per_lane >= 1);

    // Split the per-lane share into <=16-byte contiguous chunks.
    int chunk_elems = per_lane;
    while (chunk_elems * p.ebytes > 16)
        chunk_elems /= 2;
    TCSIM_CHECK(chunk_elems >= 1);
    TCSIM_CHECK(per_lane % chunk_elems == 0);
    TCSIM_CHECK(run_len % chunk_elems == 0);
    int parts = per_lane / chunk_elems;
    // Each part owns a private 4-register staging window.
    TCSIM_CHECK(parts <= 4);
    return {chunk_elems, parts, run_len};
}

/** Per-lane global and shared addresses of one part. */
void
part_addresses(const StageBlockParams& p, const StagePlan& plan, int part,
               std::array<uint64_t, kWarpSize>* gaddr,
               std::array<uint64_t, kWarpSize>* saddr)
{
    const int lanes_total = p.num_warps * kWarpSize;
    for (int lane = 0; lane < kWarpSize; ++lane) {
        // Chunks are distributed so that consecutive lanes cover
        // consecutive chunks (coalesced within each part).
        int chunk_index = part * lanes_total + p.warp * kWarpSize + lane;
        int elem = chunk_index * plan.chunk_elems;
        int run = elem / plan.run_len;
        int off = elem % plan.run_len;
        int r = p.layout == Layout::kRowMajor ? run : off;
        int c = p.layout == Layout::kRowMajor ? off : run;
        (*gaddr)[lane] =
            p.block_base +
            static_cast<uint64_t>(
                p.layout == Layout::kRowMajor
                    ? static_cast<int64_t>(r) * p.ld_global + c
                    : static_cast<int64_t>(c) * p.ld_global + r) *
                p.ebytes;
        (*saddr)[lane] = p.shared_base +
                         static_cast<uint64_t>(run * (plan.run_len + p.pad) +
                                               off) *
                             p.ebytes;
    }
}

}  // namespace

void
stage_block_ldg(WarpBuilder* b, const StageBlockParams& p)
{
    StagePlan plan = plan_stage(p);
    for (int part = 0; part < plan.parts; ++part) {
        std::array<uint64_t, kWarpSize> gaddr{};
        std::array<uint64_t, kWarpSize> saddr{};
        part_addresses(p, plan, part, &gaddr, &saddr);
        int width = plan.chunk_elems * p.ebytes * 8;
        b->mem(Opcode::kLdg, static_cast<uint8_t>(p.reg + 4 * part), width,
               gaddr, p.k_stride);
    }
}

void
stage_block_sts(WarpBuilder* b, const StageBlockParams& p)
{
    StagePlan plan = plan_stage(p);
    for (int part = 0; part < plan.parts; ++part) {
        std::array<uint64_t, kWarpSize> gaddr{};
        std::array<uint64_t, kWarpSize> saddr{};
        part_addresses(p, plan, part, &gaddr, &saddr);
        int width = plan.chunk_elems * p.ebytes * 8;
        b->mem(Opcode::kSts, static_cast<uint8_t>(p.reg + 4 * part), width,
               saddr, 0, p.ping_pong);
    }
}

void
stage_block(WarpBuilder* b, const StageBlockParams& p)
{
    StagePlan plan = plan_stage(p);
    for (int part = 0; part < plan.parts; ++part) {
        std::array<uint64_t, kWarpSize> gaddr{};
        std::array<uint64_t, kWarpSize> saddr{};
        part_addresses(p, plan, part, &gaddr, &saddr);
        int width = plan.chunk_elems * p.ebytes * 8;
        uint8_t reg = static_cast<uint8_t>(p.reg + 4 * part);
        b->mem(Opcode::kLdg, reg, width, gaddr, p.k_stride);
        b->mem(Opcode::kSts, reg, width, saddr, 0, p.ping_pong);
    }
}

}  // namespace tcsim
