#include "kernels/wmma_api.h"

#include <map>
#include <memory>
#include <mutex>

namespace tcsim {

// The memoization caches below are shared by every simulator instance
// in the process; the batch runner executes scenarios on several
// threads, so lookups take a mutex.  References returned point at
// node-stable map entries that are never erased.

const FragmentMap&
cached_fragment_map(Arch arch, WmmaOperand op, TileShape shape, TcMode mode,
                    Layout layout)
{
    struct Key
    {
        Arch arch;
        WmmaOperand op;
        int m, n, k;
        TcMode mode;
        Layout layout;
        auto operator<=>(const Key&) const = default;
    };
    static std::map<Key, std::unique_ptr<FragmentMap>> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);

    Key key{arch, op, shape.m, shape.n, shape.k, mode, layout};
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::make_unique<FragmentMap>(fragment_map(
                                   arch, op, shape, mode, layout)))
                 .first;
    }
    return *it->second;
}

const std::vector<MemAccessDesc>&
cached_memory_ops(const FragmentMap& map, int ld_elems)
{
    struct Key
    {
        const FragmentMap* map;
        int ld;
        auto operator<=>(const Key&) const = default;
    };
    static std::map<Key, std::vector<MemAccessDesc>> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);

    Key key{&map, ld_elems};
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, wmma_memory_ops(map, ld_elems)).first;
    return it->second;
}

}  // namespace tcsim
