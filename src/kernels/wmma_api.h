#pragma once
/**
 * @file
 * Cached WMMA metadata: fragment maps and their memory-op expansions
 * are immutable per configuration, so kernels share one instance
 * instead of rebuilding them per warp trace.
 */

#include <vector>

#include "tensor/fragment.h"
#include "tensor/transactions.h"

namespace tcsim {

/** Shared fragment map for (arch, op, shape, mode, layout). */
const FragmentMap& cached_fragment_map(Arch arch, WmmaOperand op,
                                       TileShape shape, TcMode mode,
                                       Layout layout);

/** Shared wmma.load/store memory-op expansion for (map, ld). */
const std::vector<MemAccessDesc>& cached_memory_ops(const FragmentMap& map,
                                                    int ld_elems);

}  // namespace tcsim
