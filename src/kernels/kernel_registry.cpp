#include "kernels/kernel_registry.h"

#include "common/logging.h"

namespace tcsim {

const std::vector<KernelFamilyInfo>&
kernel_families()
{
    // ab/cd element sizes mirror the builders' device addressing:
    // WMMA kernels read FP16 operands (C/D width tracks TcMode, so
    // cd_elem_bytes holds the widest case); sgemm_ffma is all-FP32;
    // hgemm_hfma2 is packed FP16 end to end.
    static const std::vector<KernelFamilyInfo> families = {
        {KernelFamily::kWmmaNaive, "wmma_naive", true, true, 2, 4},
        {KernelFamily::kWmmaShared, "wmma_shared", true, true, 2, 4},
        {KernelFamily::kSgemmFfma, "sgemm_ffma", true, false, 4, 4},
        {KernelFamily::kHgemmHfma2, "hgemm_hfma2", true, false, 2, 2},
        {KernelFamily::kHmmaStress, "hmma_stress", false, false, 2, 4},
    };
    return families;
}

const KernelFamilyInfo*
find_kernel_family(const std::string& name)
{
    for (const KernelFamilyInfo& info : kernel_families())
        if (name == info.name)
            return &info;
    return nullptr;
}

std::string
kernel_family_names()
{
    std::string out;
    for (const KernelFamilyInfo& info : kernel_families()) {
        if (!out.empty())
            out += ", ";
        out += info.name;
    }
    return out;
}

KernelDesc
build_gemm_kernel(KernelFamily family, const GemmKernelConfig& cfg,
                  const GemmBuffers& buf, int warps_per_cta)
{
    switch (family) {
      case KernelFamily::kWmmaNaive:
        return make_wmma_gemm_naive(cfg, buf, warps_per_cta);
      case KernelFamily::kWmmaShared: return make_wmma_gemm_shared(cfg, buf);
      case KernelFamily::kSgemmFfma: return make_sgemm_ffma(cfg, buf);
      case KernelFamily::kHgemmHfma2: return make_hgemm_hfma2(cfg, buf);
      case KernelFamily::kHmmaStress: break;
    }
    panic("build_gemm_kernel: family is not GEMM-shaped");
}

double
gemm_flops(int m, int n, int k)
{
    return 2.0 * m * n * k;
}

double
hmma_stress_flops(int ctas, int warps_per_cta, int wmma_per_warp)
{
    return 2.0 * 16 * 16 * 16 * static_cast<double>(ctas) * warps_per_cta *
           wmma_per_warp;
}

}  // namespace tcsim
