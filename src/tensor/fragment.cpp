#include "tensor/fragment.h"

#include "common/logging.h"

namespace tcsim {

FragmentMap::FragmentMap(Arch arch, WmmaOperand op, TileShape shape,
                         TcMode mode, Layout layout,
                         std::vector<Fragment> frags)
    : arch_(arch), op_(op), shape_(shape), mode_(mode), layout_(layout),
      frags_(std::move(frags))
{
    TCSIM_CHECK(frags_.size() == kWarpSize);
    size_t per_thread = frags_.front().elems.size();
    for (const auto& f : frags_)
        TCSIM_CHECK(f.elems.size() == per_thread);

    int rows = shape_.rows(op_);
    int cols = shape_.cols(op_);
    index_.resize(static_cast<size_t>(rows) * cols);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = frags_[lane].elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            const ElemCoord& e = elems[slot];
            TCSIM_CHECK(e.row >= 0 && e.row < rows);
            TCSIM_CHECK(e.col >= 0 && e.col < cols);
            index_[static_cast<size_t>(e.row) * cols + e.col].push_back(
                {lane, static_cast<int>(slot)});
        }
    }
    // Every tile element must be owned by at least one thread.
    for (const auto& owners : index_)
        TCSIM_CHECK(!owners.empty());
}

const Fragment&
FragmentMap::fragment(int lane) const
{
    TCSIM_CHECK(lane >= 0 && lane < kWarpSize);
    return frags_[lane];
}

std::vector<ElemLocation>
FragmentMap::locate(int r, int c) const
{
    int cols = shape_.cols(op_);
    TCSIM_CHECK(r >= 0 && r < shape_.rows(op_));
    TCSIM_CHECK(c >= 0 && c < cols);
    return index_[static_cast<size_t>(r) * cols + c];
}

bool
FragmentMap::is_fp16_storage() const
{
    if (op_ == WmmaOperand::kA || op_ == WmmaOperand::kB) {
        return mode_ == TcMode::kFp16 || mode_ == TcMode::kMixed;
    }
    // C / D accumulator storage.
    return mode_ == TcMode::kFp16;
}

int
FragmentMap::regs_per_thread() const
{
    int elems = elems_per_thread();
    if (op_ == WmmaOperand::kA || op_ == WmmaOperand::kB) {
        switch (mode_) {
          case TcMode::kFp16:
          case TcMode::kMixed:
            return elems / 2;  // two halfs per 32-bit register
          case TcMode::kInt8:
            return elems / 4;
          case TcMode::kInt4:
            return elems / 8;
        }
    }
    // Accumulators: FP32/INT32 use one register per element; FP16 packs
    // two elements per register.
    return mode_ == TcMode::kFp16 ? elems / 2 : elems;
}

FragmentMap
fragment_map(Arch arch, WmmaOperand op, TileShape shape, TcMode mode,
             Layout layout)
{
    if (arch == Arch::kVolta) {
        TCSIM_CHECK(shape == kShape16x16x16);
        return volta_fragment_map(op, mode, layout);
    }
    return turing_fragment_map(op, shape, mode, layout);
}

}  // namespace tcsim
