#include <vector>

#include "common/logging.h"
#include "tensor/fragment.h"

namespace tcsim {

namespace {

/**
 * Turing distribution rule (Section III-B2): each element is loaded
 * exactly once; each row (A and C) or column (B) is owned by one
 * threadgroup, and consecutive threadgroups own consecutive
 * rows/columns (round-robin, tg = index % 8).  Within a threadgroup
 * the owned row/column is split into four equal contiguous chunks,
 * one per thread.
 */
Fragment
turing_fragment(WmmaOperand op, TileShape shape, int lane)
{
    int tg = threadgroup_of_lane(lane);
    int t = lane % kThreadgroupSize;
    int rows = shape.rows(op);
    int cols = shape.cols(op);

    Fragment frag;
    if (op == WmmaOperand::kB) {
        // Columns round-robin across threadgroups; threads split the
        // column (K extent) into 4 chunks.
        int chunk = rows / kThreadgroupSize;
        TCSIM_CHECK(chunk >= 1);
        for (int c = tg; c < cols; c += kThreadgroupsPerWarp)
            for (int j = 0; j < chunk; ++j)
                frag.elems.push_back({static_cast<int16_t>(t * chunk + j),
                                      static_cast<int16_t>(c)});
    } else {
        // A, C, D: rows round-robin across threadgroups; threads split
        // the row into 4 chunks.
        int chunk = cols / kThreadgroupSize;
        TCSIM_CHECK(chunk >= 1);
        for (int r = tg; r < rows; r += kThreadgroupsPerWarp)
            for (int j = 0; j < chunk; ++j)
                frag.elems.push_back({static_cast<int16_t>(r),
                                      static_cast<int16_t>(t * chunk + j)});
    }
    return frag;
}

}  // namespace

FragmentMap
turing_fragment_map(WmmaOperand op, TileShape shape, TcMode mode,
                    Layout layout)
{
    if (mode == TcMode::kInt4) {
        TCSIM_CHECK(shape == kShape8x8x32);
    } else {
        TCSIM_CHECK(shape == kShape16x16x16 || shape == kShape32x8x16 ||
                    shape == kShape8x32x16);
    }
    std::vector<Fragment> frags;
    frags.reserve(kWarpSize);
    for (int lane = 0; lane < kWarpSize; ++lane)
        frags.push_back(turing_fragment(op, shape, lane));
    return FragmentMap(Arch::kTuring, op, shape, mode, layout,
                       std::move(frags));
}

}  // namespace tcsim
