#include "tensor/transactions.h"

#include <set>

#include "common/logging.h"

namespace tcsim {

const char*
MemAccessDesc::mnemonic(bool is_store) const
{
    if (is_store) {
        switch (width_bits) {
          case 16: return "ST.E.U16";
          case 32: return "ST.E.SYS";
          case 64: return "ST.E.64";
          case 128: return "ST.E.128";
        }
    } else {
        switch (width_bits) {
          case 16: return "LD.E.U16";
          case 32: return "LD.E.SYS";
          case 64: return "LD.E.64";
          case 128: return "LD.E.128";
        }
    }
    return "LD.E.?";
}

int
element_bytes(WmmaOperand op, TcMode mode)
{
    if (op == WmmaOperand::kA || op == WmmaOperand::kB) {
        switch (mode) {
          case TcMode::kFp16:
          case TcMode::kMixed:
            return 2;
          case TcMode::kInt8:
            return 1;
          case TcMode::kInt4:
            return 1;  // two elements per byte; modeled as byte pairs
        }
    }
    // Accumulators: FP32 / INT32 are 4 bytes; FP16 is 2 bytes.
    return mode == TcMode::kFp16 ? 2 : 4;
}

namespace {

/** Byte offset of element (r, c) in a matrix with leading dimension
 *  ld (elements) stored in @p layout. */
int64_t
elem_offset(const ElemCoord& e, Layout layout, int ld, int ebytes)
{
    int64_t idx = layout == Layout::kRowMajor
                      ? static_cast<int64_t>(e.row) * ld + e.col
                      : static_cast<int64_t>(e.col) * ld + e.row;
    return idx * ebytes;
}

}  // namespace

std::vector<MemAccessDesc>
wmma_memory_ops(const FragmentMap& map, int ld_elems)
{
    const int ebytes = element_bytes(map.op(), map.mode());
    const int per_thread = map.elems_per_thread();
    const Layout layout = map.layout();
    const bool is_acc =
        map.op() == WmmaOperand::kC || map.op() == WmmaOperand::kD;

    // Determine the widest chunking that keeps every lane's chunk
    // contiguous in memory.  All lanes share one pattern (SASS
    // instructions are warp-uniform); accumulator accesses are fixed
    // at 32 bits per the paper.
    const int max_chunk_bytes = is_acc ? 4 : 16;
    int chunk_elems = max_chunk_bytes / ebytes;

    auto contiguous_everywhere = [&](int chunk) {
        if (per_thread % chunk != 0)
            return false;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            const auto& elems = map.fragment(lane).elems;
            for (int base = 0; base + chunk <= per_thread; base += chunk) {
                int64_t off0 = elem_offset(elems[base], layout, ld_elems,
                                           ebytes);
                for (int j = 1; j < chunk; ++j) {
                    int64_t off = elem_offset(elems[base + j], layout,
                                              ld_elems, ebytes);
                    if (off != off0 + static_cast<int64_t>(j) * ebytes)
                        return false;
                }
            }
        }
        return true;
    };

    while (chunk_elems > 1 && !contiguous_everywhere(chunk_elems))
        chunk_elems /= 2;
    TCSIM_CHECK(chunk_elems >= 1);
    TCSIM_CHECK(per_thread % chunk_elems == 0);

    std::vector<MemAccessDesc> ops;
    const int num_ops = per_thread / chunk_elems;
    ops.reserve(num_ops);
    for (int i = 0; i < num_ops; ++i) {
        MemAccessDesc d;
        d.width_bits = chunk_elems * ebytes * 8;
        d.first_slot = i * chunk_elems;
        d.num_slots = chunk_elems;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            const auto& elems = map.fragment(lane).elems;
            d.lane_offset[lane] =
                elem_offset(elems[d.first_slot], layout, ld_elems, ebytes);
        }
        ops.push_back(d);
    }
    return ops;
}

uint64_t
sectors_for_access(const MemAccessDesc& op, uint64_t base_addr,
                   int sector_bytes)
{
    std::set<uint64_t> sectors;
    int bytes = op.width_bits / 8;
    for (int lane = 0; lane < kWarpSize; ++lane) {
        if (op.lane_offset[lane] == kInactiveLane)
            continue;
        uint64_t lo = base_addr + static_cast<uint64_t>(op.lane_offset[lane]);
        uint64_t hi = lo + static_cast<uint64_t>(bytes) - 1;
        for (uint64_t s = lo / sector_bytes; s <= hi / sector_bytes; ++s)
            sectors.insert(s);
    }
    return sectors.size();
}

uint64_t
count_transactions(const std::vector<MemAccessDesc>& ops, uint64_t base_addr,
                   int sector_bytes)
{
    uint64_t total = 0;
    for (const auto& op : ops)
        total += sectors_for_access(op, base_addr, sector_bytes);
    return total;
}

}  // namespace tcsim
