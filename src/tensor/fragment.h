#pragma once
/**
 * @file
 * Fragment maps: the distribution of WMMA operand-matrix elements to
 * the registers of individual threads in a warp (Figs 7 and 8 of the
 * paper).
 *
 * A *fragment* is the set of tile elements mapped into one thread's
 * registers.  On Volta each A/B element is held by exactly two threads
 * (one in each threadgroup of a pair); on Turing each element is held
 * exactly once.
 */

#include <vector>

#include "arch/gpu_config.h"
#include "tensor/types.h"

namespace tcsim {

/** One thread's fragment: tile elements in register-slot order. */
struct Fragment
{
    /** elems[i] lives in register slot i (2 half slots or 1 float
     *  slot per 32-bit register). */
    std::vector<ElemCoord> elems;
};

/** Location of one tile element within a warp's registers. */
struct ElemLocation
{
    int lane = 0;  ///< Thread index within the warp [0, 32).
    int slot = 0;  ///< Register-slot index within the fragment.
};

/**
 * The complete element-to-thread mapping of one operand tile for one
 * (architecture, operand, shape, mode, layout) combination.
 */
class FragmentMap
{
  public:
    FragmentMap(Arch arch, WmmaOperand op, TileShape shape, TcMode mode,
                Layout layout, std::vector<Fragment> frags);

    Arch arch() const { return arch_; }
    WmmaOperand op() const { return op_; }
    TileShape shape() const { return shape_; }
    TcMode mode() const { return mode_; }
    Layout layout() const { return layout_; }

    /** Per-lane fragments, index = lane id. */
    const std::vector<Fragment>& fragments() const { return frags_; }
    const Fragment& fragment(int lane) const;

    /** Elements per thread. */
    int elems_per_thread() const
    {
        return static_cast<int>(frags_.front().elems.size());
    }

    /** All warp locations holding tile element (r, c).
     *  Volta A/B: exactly two; Turing and all C/D: exactly one. */
    std::vector<ElemLocation> locate(int r, int c) const;

    /** Number of 32-bit registers each thread devotes to the fragment. */
    int regs_per_thread() const;

    /** True if the element type is 16-bit (A/B always; C/D in FP16). */
    bool is_fp16_storage() const;

  private:
    Arch arch_;
    WmmaOperand op_;
    TileShape shape_;
    TcMode mode_;
    Layout layout_;
    std::vector<Fragment> frags_;
    /** locate() index: (r * cols + c) -> locations. */
    std::vector<std::vector<ElemLocation>> index_;
};

/**
 * Build the Volta (Titan V) fragment map per Fig 7.  Only the
 * 16x16x16 shape exists on Volta.  @p layout is the storage layout of
 * the operand matrix; it changes load instruction shape, not element
 * ownership.
 */
FragmentMap volta_fragment_map(WmmaOperand op, TcMode mode, Layout layout);

/**
 * Build the Turing (RTX 2080) fragment map per Fig 8 for shapes
 * 16x16x16 / 32x8x16 / 8x32x16 (fp16, mixed, int8) and 8x8x32 (int4).
 */
FragmentMap turing_fragment_map(WmmaOperand op, TileShape shape, TcMode mode,
                                Layout layout);

/** Dispatch on architecture. */
FragmentMap fragment_map(Arch arch, WmmaOperand op, TileShape shape,
                         TcMode mode, Layout layout);

}  // namespace tcsim
