#pragma once
/**
 * @file
 * Decomposition of wmma.load / wmma.store PTX instructions into
 * warp-wide SASS memory operations (LD.E.128 / LD.E.64 / LD.E.SYS and
 * the store equivalents) and coalescing of those operations into
 * memory-sector transactions (Section III-C and Section V-A of the
 * paper).
 */

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/fragment.h"

namespace tcsim {

/** Sentinel for lanes not participating in an access. */
inline constexpr int64_t kInactiveLane = -1;

/**
 * One warp-wide SASS memory instruction produced by expanding a
 * wmma.load or wmma.store.
 */
struct MemAccessDesc
{
    /** Access width per thread in bits (16/32/64/128). */
    int width_bits = 32;
    /** First fragment register-slot this access fills. */
    int first_slot = 0;
    /** Slots filled per lane by this access. */
    int num_slots = 0;
    /** Per-lane byte offset from the tile base address
     *  (kInactiveLane when the lane does not access memory). */
    std::array<int64_t, kWarpSize> lane_offset{};

    /** SASS-style mnemonic, e.g. "LD.E.128". */
    const char* mnemonic(bool is_store) const;
};

/**
 * Expand a wmma.load/store of @p map from a matrix stored with
 * leading dimension @p ld_elems (in elements) into per-thread SASS
 * memory operations.
 *
 * A/B operands follow Fig 7a: contiguous fragments use 128-bit
 * accesses, strided fragments use 64-bit accesses (16-bit when the
 * layout scatters individual elements, as on Turing column-major A).
 * C/D operands always use 32-bit accesses, matching the paper's
 * observation that wmma.load.c is broken into LD.E.SYS instructions.
 */
std::vector<MemAccessDesc> wmma_memory_ops(const FragmentMap& map,
                                           int ld_elems);

/** Bytes per stored element of the operand under the given mode. */
int element_bytes(WmmaOperand op, TcMode mode);

/**
 * Count the coalesced memory transactions a list of accesses
 * generates, at @p sector_bytes granularity (32 B on Volta), assuming
 * the tile starts at @p base_addr.
 */
uint64_t count_transactions(const std::vector<MemAccessDesc>& ops,
                            uint64_t base_addr, int sector_bytes = 32);

/** Distinct sectors touched by one warp-wide access. */
uint64_t sectors_for_access(const MemAccessDesc& op, uint64_t base_addr,
                            int sector_bytes = 32);

}  // namespace tcsim
