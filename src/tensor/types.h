#pragma once
/**
 * @file
 * Core tile/fragment vocabulary shared by the tensor-core model:
 * layouts, WMMA operand roles, tile shapes, and element coordinates.
 */

#include <cstdint>
#include <string>

namespace tcsim {

/** Storage order of an operand matrix in memory. */
enum class Layout { kRowMajor, kColMajor };

inline const char*
layout_name(Layout l)
{
    return l == Layout::kRowMajor ? "row" : "col";
}

/** Role of an operand matrix in D = A x B + C. */
enum class WmmaOperand { kA, kB, kC, kD };

inline const char*
operand_name(WmmaOperand op)
{
    switch (op) {
      case WmmaOperand::kA: return "A";
      case WmmaOperand::kB: return "B";
      case WmmaOperand::kC: return "C";
      case WmmaOperand::kD: return "D";
    }
    return "?";
}

/**
 * WMMA tile shape M x N x K: A is M x K, B is K x N, C/D are M x N.
 */
struct TileShape
{
    int m = 16;
    int n = 16;
    int k = 16;

    bool operator==(const TileShape&) const = default;

    std::string str() const
    {
        return std::to_string(m) + "x" + std::to_string(n) + "x" +
               std::to_string(k);
    }

    /** Rows of the given operand's tile. */
    int rows(WmmaOperand op) const
    {
        switch (op) {
          case WmmaOperand::kA: return m;
          case WmmaOperand::kB: return k;
          default: return m;
        }
    }

    /** Columns of the given operand's tile. */
    int cols(WmmaOperand op) const
    {
        switch (op) {
          case WmmaOperand::kA: return k;
          case WmmaOperand::kB: return n;
          default: return n;
        }
    }
};

/** The m16n16k16 shape supported since CUDA 9.0. */
inline constexpr TileShape kShape16x16x16{16, 16, 16};
/** Turing-only shapes (Section III-B2 of the paper). */
inline constexpr TileShape kShape32x8x16{32, 8, 16};
inline constexpr TileShape kShape8x32x16{8, 32, 16};
inline constexpr TileShape kShape8x8x32{8, 8, 32};

/** Position of one element inside an operand tile. */
struct ElemCoord
{
    int16_t row = 0;
    int16_t col = 0;

    bool operator==(const ElemCoord&) const = default;
};

/** Threads per warp and threadgroup geometry (Section III). */
inline constexpr int kWarpSize = 32;
inline constexpr int kThreadgroupSize = 4;
inline constexpr int kThreadgroupsPerWarp = kWarpSize / kThreadgroupSize;
/** Octet X = threadgroup X and threadgroup X+4 (Table II). */
inline constexpr int kOctetsPerWarp = 4;

/** Threadgroup id of a lane: floor(threadIdx / 4). */
inline int
threadgroup_of_lane(int lane)
{
    return lane / kThreadgroupSize;
}

/** Octet id of a threadgroup: octet X = {tg X, tg X+4}. */
inline int
octet_of_threadgroup(int tg)
{
    return tg % kOctetsPerWarp;
}

/** Octet id of a lane. */
inline int
octet_of_lane(int lane)
{
    return octet_of_threadgroup(threadgroup_of_lane(lane));
}

}  // namespace tcsim
