#pragma once
/**
 * @file
 * Volta (Titan V) operand-distribution constants from Section III of
 * the paper, shared between the fragment mapper, the HMMA
 * decomposition engine, and the tests that validate Figs 7/10 and
 * Tables II/III.
 *
 * Geometry recovered from the paper:
 *  - Matrix A is split into four 4x16 row *segments*; segment r
 *    (rows 4r..4r+3) is loaded by two threadgroups (Fig 7a).
 *  - Matrix B is split into four 16x4 column segments, each loaded by
 *    two threadgroups; pooling the pair of threadgroups in an octet
 *    covers the 16x8 B subtile of Table II.
 *  - Matrix C/D: each threadgroup owns a 4x8 block; the two
 *    threadgroups of an octet stack vertically to form the octet's
 *    8x8 result subtile (Fig 10b, Table II).
 */

#include <array>

namespace tcsim {

/** First row of matrix A held by each threadgroup (4 consecutive
 *  rows).  Rows 0-3 -> tgs {0,2}; 4-7 -> {4,6}; 8-11 -> {1,3};
 *  12-15 -> {5,7} (Fig 7a). */
inline constexpr std::array<int, 8> kVoltaARowStart = {
    0, 8, 0, 8, 4, 12, 4, 12,
};

/** First column of matrix B held by each threadgroup (4 consecutive
 *  columns).  Octet X = {tg X, tg X+4} pools columns into the 8-wide
 *  N range of Table II. */
inline constexpr std::array<int, 8> kVoltaBColStart = {
    0, 0, 8, 8, 4, 4, 12, 12,
};

/** Top-left (row, col) of each threadgroup's 4x8 C/D block. */
inline constexpr std::array<int, 8> kVoltaCRowStart = {
    0, 8, 0, 8, 4, 12, 4, 12,
};
inline constexpr std::array<int, 8> kVoltaCColStart = {
    0, 0, 8, 8, 0, 0, 8, 8,
};

/** Octet operand ranges (Table II).  Octet X = tg X union tg X+4. */
struct VoltaOctetRange
{
    int a_row0, a_row1;  ///< Inclusive row range of A.
    int b_col0, b_col1;  ///< Inclusive column range of B.
};

inline constexpr std::array<VoltaOctetRange, 4> kVoltaOctetRanges = {{
    {0, 7, 0, 7},    // octet 0: tg 0,4
    {8, 15, 0, 7},   // octet 1: tg 1,5
    {0, 7, 8, 15},   // octet 2: tg 2,6
    {8, 15, 8, 15},  // octet 3: tg 3,7
}};

}  // namespace tcsim
