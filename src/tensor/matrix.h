#pragma once
/**
 * @file
 * Host-side dense matrix container with explicit layout, used as the
 * source/sink of simulated GEMM operands and as the golden-reference
 * data structure in tests.
 */

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "fp16/half.h"
#include "tensor/types.h"

namespace tcsim {

/**
 * Dense rows x cols matrix with row- or column-major storage and a
 * leading dimension equal to the packed extent.
 */
template <typename T>
class HostMatrix
{
  public:
    HostMatrix() = default;

    HostMatrix(int rows, int cols, Layout layout = Layout::kRowMajor)
        : rows_(rows), cols_(cols), layout_(layout),
          data_(static_cast<size_t>(rows) * cols)
    {
        TCSIM_CHECK(rows > 0 && cols > 0);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    Layout layout() const { return layout_; }

    /** Leading dimension: elements between consecutive rows (row-major)
     *  or columns (column-major). */
    int ld() const { return layout_ == Layout::kRowMajor ? cols_ : rows_; }

    /** Linear element index of (r, c) under the storage layout. */
    size_t index(int r, int c) const
    {
        TCSIM_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        if (layout_ == Layout::kRowMajor)
            return static_cast<size_t>(r) * cols_ + c;
        return static_cast<size_t>(c) * rows_ + r;
    }

    T& at(int r, int c) { return data_[index(r, c)]; }
    const T& at(int r, int c) const { return data_[index(r, c)]; }

    T* data() { return data_.data(); }
    const T* data() const { return data_.data(); }
    size_t size_bytes() const { return data_.size() * sizeof(T); }
    size_t size() const { return data_.size(); }

    /** Fill with f(r, c). */
    template <typename F>
    void fill(F&& f)
    {
        for (int r = 0; r < rows_; ++r)
            for (int c = 0; c < cols_; ++c)
                at(r, c) = f(r, c);
    }

  private:
    int rows_ = 0;
    int cols_ = 0;
    Layout layout_ = Layout::kRowMajor;
    std::vector<T> data_;
};

/**
 * Reference GEMM: D = A x B + C with FP16 inputs, accumulating in
 * `Acc` (float for mixed precision, half for FP16 mode).  This mirrors
 * the tensor core datapath: products are computed exactly in FP32
 * (a half product is exactly representable in float) and the
 * accumulation chain rounds per-add in FP16 mode only.
 */
template <typename Acc>
void
reference_gemm(const HostMatrix<half>& a, const HostMatrix<half>& b,
               const HostMatrix<Acc>& c, HostMatrix<Acc>& d)
{
    TCSIM_CHECK(a.cols() == b.rows());
    TCSIM_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
    TCSIM_CHECK(d.rows() == a.rows() && d.cols() == b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < b.cols(); ++j) {
            if constexpr (std::is_same_v<Acc, float>) {
                float acc = c.at(i, j);
                for (int k = 0; k < a.cols(); ++k)
                    acc += a.at(i, k).to_float() * b.at(k, j).to_float();
                d.at(i, j) = acc;
            } else {
                Acc acc = c.at(i, j);
                for (int k = 0; k < a.cols(); ++k)
                    acc += a.at(i, k) * b.at(k, j);
                d.at(i, j) = acc;
            }
        }
    }
}

}  // namespace tcsim
