#include <vector>

#include "common/logging.h"
#include "tensor/fragment.h"
#include "tensor/mapping_volta.h"

namespace tcsim {

namespace {

/**
 * A/B fragment for one lane.
 *
 * "Contiguous" orientation (A row-major, B column-major): the thread
 * holds 16 consecutive elements -- one full row (A) or column (B) of
 * its threadgroup's segment -- loaded via two 128-bit loads (Fig 7a
 * circled 2).
 *
 * "Strided" orientation (A column-major, B row-major): the thread
 * holds four blocks of four consecutive elements with a stride of 64
 * elements, loaded via four 64-bit loads (Fig 7a circled 3).
 *
 * In both orientations register pair s (slots 4s..4s+3) carries the
 * operand data consumed by HMMA set s.
 */
Fragment
volta_ab_fragment(WmmaOperand op, Layout layout, int lane)
{
    int tg = threadgroup_of_lane(lane);
    int t = lane % kThreadgroupSize;
    Fragment frag;
    frag.elems.reserve(16);

    bool contiguous;
    if (op == WmmaOperand::kA)
        contiguous = layout == Layout::kRowMajor;
    else
        contiguous = layout == Layout::kColMajor;

    if (op == WmmaOperand::kA) {
        int row0 = kVoltaARowStart[tg];
        if (contiguous) {
            // Thread t holds row (row0 + t) entirely: slots = cols 0..15.
            for (int c = 0; c < 16; ++c)
                frag.elems.push_back(
                    {static_cast<int16_t>(row0 + t), static_cast<int16_t>(c)});
        } else {
            // Block k: column (4k + t), rows row0..row0+3.
            for (int k = 0; k < 4; ++k)
                for (int j = 0; j < 4; ++j)
                    frag.elems.push_back({static_cast<int16_t>(row0 + j),
                                          static_cast<int16_t>(4 * k + t)});
        }
    } else {
        int col0 = kVoltaBColStart[tg];
        if (contiguous) {
            // Thread t holds column (col0 + t): slots = rows 0..15.
            for (int r = 0; r < 16; ++r)
                frag.elems.push_back(
                    {static_cast<int16_t>(r), static_cast<int16_t>(col0 + t)});
        } else {
            // Block k: row (4k + t), columns col0..col0+3.
            for (int k = 0; k < 4; ++k)
                for (int j = 0; j < 4; ++j)
                    frag.elems.push_back({static_cast<int16_t>(4 * k + t),
                                          static_cast<int16_t>(col0 + j)});
        }
    }
    return frag;
}

/**
 * C/D fragment for one lane.  The threadgroup owns a 4x8 block
 * (kVoltaCRowStart/kVoltaCColStart); the distribution within the
 * threadgroup depends on the accumulator precision (Fig 7b) and lines
 * up with the 2x4 (mixed) or 4x4 (FP16) HMMA step outputs:
 *
 *  - Mixed (FP32): step s covers local rows {2(s&1)..} x cols
 *    {4(s>>1)..}; within a step block thread t holds row t/2, columns
 *    2(t%2)+{0,1}.  Slots 2s, 2s+1 belong to step s (one register
 *    pair per step, cf. destination pairs R8/R10/R4/R6 in Fig 9a).
 *  - FP16: thread t holds local row t of the block; slots 0..3 are
 *    columns 0..3 (step 0 of each set), slots 4..7 are columns 4..7
 *    (step 1), matching destination pairs R4/R6 in Fig 9b.
 */
Fragment
volta_cd_fragment(TcMode mode, int lane)
{
    int tg = threadgroup_of_lane(lane);
    int t = lane % kThreadgroupSize;
    int row0 = kVoltaCRowStart[tg];
    int col0 = kVoltaCColStart[tg];
    Fragment frag;
    frag.elems.reserve(8);

    if (mode == TcMode::kFp16) {
        for (int c = 0; c < 8; ++c)
            frag.elems.push_back(
                {static_cast<int16_t>(row0 + t), static_cast<int16_t>(col0 + c)});
    } else {
        TCSIM_CHECK(mode == TcMode::kMixed);
        for (int s = 0; s < 4; ++s) {
            int lr = 2 * (s & 1) + t / 2;
            int lc = 4 * (s >> 1) + 2 * (t % 2);
            frag.elems.push_back({static_cast<int16_t>(row0 + lr),
                                  static_cast<int16_t>(col0 + lc)});
            frag.elems.push_back({static_cast<int16_t>(row0 + lr),
                                  static_cast<int16_t>(col0 + lc + 1)});
        }
    }
    return frag;
}

}  // namespace

FragmentMap
volta_fragment_map(WmmaOperand op, TcMode mode, Layout layout)
{
    TCSIM_CHECK(mode == TcMode::kFp16 || mode == TcMode::kMixed);
    std::vector<Fragment> frags;
    frags.reserve(kWarpSize);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        if (op == WmmaOperand::kA || op == WmmaOperand::kB)
            frags.push_back(volta_ab_fragment(op, layout, lane));
        else
            frags.push_back(volta_cd_fragment(mode, lane));
    }
    return FragmentMap(Arch::kVolta, op, kShape16x16x16, mode, layout,
                       std::move(frags));
}

}  // namespace tcsim
