#pragma once
/**
 * @file
 * Direct host-matrix <-> warp-register fragment transfer.
 *
 * These helpers implement the *functional* effect of
 * wmma.load_matrix_sync / wmma.store_matrix_sync without going
 * through the simulated memory system: each fragment slot is filled
 * from (or drained to) the corresponding tile element.  The simulator
 * kernels perform the same transfer via LD/ST micro-ops; tests use
 * both paths and cross-check them.
 */

#include <cstdint>

#include "common/logging.h"
#include "fp16/half.h"
#include "isa/reg_state.h"
#include "tensor/fragment.h"
#include "tensor/matrix.h"

namespace tcsim {

/** Load an FP16 operand tile (A/B, or C/D in FP16 mode) into
 *  registers starting at @p base_reg. */
inline void
pack_fragment_h16(const FragmentMap& map, const HostMatrix<half>& m,
                  WarpRegState* regs, uint8_t base_reg, int row0 = 0,
                  int col0 = 0)
{
    TCSIM_CHECK(map.is_fp16_storage());
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            half v = m.at(row0 + elems[slot].row, col0 + elems[slot].col);
            regs->write_h16(lane, base_reg + static_cast<int>(slot / 2),
                            static_cast<int>(slot % 2), v);
        }
    }
}

/** Load an FP32 accumulator tile into registers. */
inline void
pack_fragment_f32(const FragmentMap& map, const HostMatrix<float>& m,
                  WarpRegState* regs, uint8_t base_reg, int row0 = 0,
                  int col0 = 0)
{
    TCSIM_CHECK(!map.is_fp16_storage());
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            float v = m.at(row0 + elems[slot].row, col0 + elems[slot].col);
            regs->write_f32(lane, base_reg + static_cast<int>(slot), v);
        }
    }
}

/** Load an INT8 operand tile. */
inline void
pack_fragment_i8(const FragmentMap& map, const HostMatrix<int8_t>& m,
                 WarpRegState* regs, uint8_t base_reg)
{
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            regs->write_i8(lane, base_reg + static_cast<int>(slot / 4),
                           static_cast<int>(slot % 4),
                           m.at(elems[slot].row, elems[slot].col));
        }
    }
}

/** Load an INT4 operand tile (values must be in [-8, 7]). */
inline void
pack_fragment_i4(const FragmentMap& map, const HostMatrix<int8_t>& m,
                 WarpRegState* regs, uint8_t base_reg)
{
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            regs->write_i4(lane, base_reg + static_cast<int>(slot / 8),
                           static_cast<int>(slot % 8),
                           m.at(elems[slot].row, elems[slot].col));
        }
    }
}

/** Load an INT32 accumulator tile. */
inline void
pack_fragment_i32(const FragmentMap& map, const HostMatrix<int32_t>& m,
                  WarpRegState* regs, uint8_t base_reg)
{
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            regs->write(lane, base_reg + static_cast<int>(slot),
                        static_cast<uint32_t>(
                            m.at(elems[slot].row, elems[slot].col)));
        }
    }
}

/** Store an FP16 accumulator fragment back to a host matrix. */
inline void
unpack_fragment_h16(const FragmentMap& map, const WarpRegState& regs,
                    uint8_t base_reg, HostMatrix<half>* m, int row0 = 0,
                    int col0 = 0)
{
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            m->at(row0 + elems[slot].row, col0 + elems[slot].col) =
                regs.read_h16(lane, base_reg + static_cast<int>(slot / 2),
                              static_cast<int>(slot % 2));
        }
    }
}

/** Store an FP32 accumulator fragment back to a host matrix. */
inline void
unpack_fragment_f32(const FragmentMap& map, const WarpRegState& regs,
                    uint8_t base_reg, HostMatrix<float>* m, int row0 = 0,
                    int col0 = 0)
{
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            m->at(row0 + elems[slot].row, col0 + elems[slot].col) =
                regs.read_f32(lane, base_reg + static_cast<int>(slot));
        }
    }
}

/** Store an INT32 accumulator fragment back to a host matrix. */
inline void
unpack_fragment_i32(const FragmentMap& map, const WarpRegState& regs,
                    uint8_t base_reg, HostMatrix<int32_t>* m)
{
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& elems = map.fragment(lane).elems;
        for (size_t slot = 0; slot < elems.size(); ++slot) {
            m->at(elems[slot].row, elems[slot].col) = static_cast<int32_t>(
                regs.read(lane, base_reg + static_cast<int>(slot)));
        }
    }
}

}  // namespace tcsim
