#pragma once
/**
 * @file
 * Evaluation metrics and report helpers: IPC correlation in the form
 * the paper reports (Fig 14b), TFLOPS conversion, and scatter/series
 * table emission for the benchmark harness.
 */

#include <string>
#include <vector>

#include "common/table.h"
#include "sim/engine.h"

namespace tcsim {
namespace metrics {

/** One (hardware, simulator) observation pair. */
struct IpcPoint
{
    std::string label;
    double hw_ipc = 0.0;
    double sim_ipc = 0.0;
};

/** Correlation summary over a set of observations. */
struct CorrelationReport
{
    double pearson = 0.0;            ///< Correlation coefficient.
    double correlation_pct = 0.0;    ///< 100 x pearson (paper's metric).
    double mean_abs_rel_err_pct = 0.0;
    double rel_stddev_pct = 0.0;
    size_t points = 0;
};

CorrelationReport correlate(const std::vector<IpcPoint>& points);

/** Render the scatter points plus the summary line. */
TextTable scatter_table(const std::string& title,
                        const std::vector<IpcPoint>& points);

/** TFLOPS from total FLOPs, cycles and a core clock in GHz. */
double tflops(double flops, double cycles, double clock_ghz);

/**
 * Per-kernel result table (kernel, stream, cycle window, cycles, IPC,
 * TFLOPS).  @p flops must parallel @p kernels (pass 0 for kernels
 * with unknown FLOP counts); shared by simrunner and the example
 * programs.
 */
TextTable launch_table(const std::vector<LaunchStats>& kernels,
                       const std::vector<double>& flops, double clock_ghz);

/**
 * One-line memory-hierarchy summary of the transaction path: L1/L2
 * hit rates, DRAM traffic, MSHR merge count and peak occupancy, and
 * per-level queueing delay.  Empty when the window saw no global
 * traffic.  Shared by simrunner and the example programs.
 */
std::string mem_summary(const MemStats& mem);

}  // namespace metrics
}  // namespace tcsim
