#include "metrics/metrics.h"

#include "common/logging.h"
#include "common/stats.h"

namespace tcsim {
namespace metrics {

CorrelationReport
correlate(const std::vector<IpcPoint>& points)
{
    TCSIM_CHECK(points.size() >= 2);
    std::vector<double> hw, sim;
    hw.reserve(points.size());
    sim.reserve(points.size());
    for (const auto& p : points) {
        hw.push_back(p.hw_ipc);
        sim.push_back(p.sim_ipc);
    }
    CorrelationReport r;
    r.pearson = stats::pearson(hw, sim);
    r.correlation_pct = 100.0 * r.pearson;
    r.mean_abs_rel_err_pct = stats::mean_abs_rel_error_pct(hw, sim);
    r.rel_stddev_pct = stats::rel_stddev_pct(hw, sim);
    r.points = points.size();
    return r;
}

TextTable
scatter_table(const std::string& title, const std::vector<IpcPoint>& points)
{
    TextTable t(title);
    t.set_header({"config", "hw_ipc", "sim_ipc", "sim/hw"});
    for (const auto& p : points) {
        t.add_row({p.label, fmt_double(p.hw_ipc, 1), fmt_double(p.sim_ipc, 1),
                   fmt_double(p.sim_ipc / p.hw_ipc, 3)});
    }
    return t;
}

double
tflops(double flops, double cycles, double clock_ghz)
{
    TCSIM_CHECK(cycles > 0.0);
    double seconds = cycles / (clock_ghz * 1e9);
    return flops / seconds / 1e12;
}

TextTable
launch_table(const std::vector<LaunchStats>& kernels,
             const std::vector<double>& flops, double clock_ghz)
{
    TCSIM_CHECK(flops.size() == kernels.size());
    TextTable t;
    t.set_header({"kernel", "stream", "window", "cycles", "ipc", "tflops"});
    for (size_t i = 0; i < kernels.size(); ++i) {
        const LaunchStats& k = kernels[i];
        double tf = k.cycles > 0 && flops[i] > 0
                        ? tflops(flops[i], static_cast<double>(k.cycles),
                                 clock_ghz)
                        : 0.0;
        t.add_row({k.kernel, std::to_string(k.stream),
                   "[" + std::to_string(k.start_cycle) + ", " +
                       std::to_string(k.finish_cycle) + "]",
                   std::to_string(k.cycles), fmt_double(k.ipc, 2),
                   fmt_double(tf, 2)});
    }
    return t;
}

std::string
mem_summary(const MemStats& mem)
{
    if (mem.global_sectors == 0)
        return "";
    auto rate = [](uint64_t hits, uint64_t total) {
        return total == 0 ? 0.0
                          : 100.0 * static_cast<double>(hits) /
                                static_cast<double>(total);
    };
    std::string s = "mem: " + std::to_string(mem.global_sectors) +
                    " sectors, L1 " +
                    fmt_double(rate(mem.l1_hits,
                                    mem.l1_hits + mem.l1_misses),
                               1) +
                    "% hit, L2 " +
                    fmt_double(rate(mem.l2_hits,
                                    mem.l2_hits + mem.l2_misses),
                               1) +
                    "% hit, " + std::to_string(mem.dram_bytes / 1024) +
                    " KiB DRAM";
    if (mem.mshr_merges > 0 || mem.mshr_peak > 0)
        s += ", mshr peak " + std::to_string(mem.mshr_peak) + " (" +
             std::to_string(mem.mshr_merges) + " merges)";
    uint64_t queued = mem.noc_queue_cycles + mem.l2_queue_cycles +
                      mem.dram_queue_cycles;
    if (queued > 0)
        s += ", queue delay noc/l2/dram " +
             std::to_string(mem.noc_queue_cycles) + "/" +
             std::to_string(mem.l2_queue_cycles) + "/" +
             std::to_string(mem.dram_queue_cycles) + " cyc";
    return s;
}

}  // namespace metrics
}  // namespace tcsim
